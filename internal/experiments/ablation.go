package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/core"
	"github.com/last-mile-congestion/lastmile/internal/dsp"
	"github.com/last-mile-congestion/lastmile/internal/lastmile"
	"github.com/last-mile-congestion/lastmile/internal/netsim"
	"github.com/last-mile-congestion/lastmile/internal/parallel"
	"github.com/last-mile-congestion/lastmile/internal/report"
	"github.com/last-mile-congestion/lastmile/internal/scenario"
	"github.com/last-mile-congestion/lastmile/internal/stats"
	"github.com/last-mile-congestion/lastmile/internal/timeseries"
)

// AblationResult captures one design-choice comparison: the paper's
// choice versus the alternative, with the quantity that justifies it.
type AblationResult struct {
	Name     string
	Choice   string
	Variants []AblationVariant
	// Verdict summarises why the paper's choice wins.
	Verdict string
}

// AblationVariant is one arm of an ablation.
type AblationVariant struct {
	Label string
	Value float64
	Note  string
}

// Render writes the ablation as a table.
func (r *AblationResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Ablation: %s (paper's choice: %s)\n", r.Name, r.Choice)
	tb := report.NewTable("variant", "value", "note")
	for _, v := range r.Variants {
		tb.AddRowf(v.Label, fmt.Sprintf("%.3f", v.Value), v.Note)
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "=> %s\n\n", r.Verdict)
	return nil
}

// ablationHealthyFleet builds a small *uncongested* fleet (ISP_C's
// probes) over a short period — the population the aggregation ablation
// contaminates with one pathological probe.
func ablationHealthyFleet(o Options, days int) ([]*timeseries.Series, scenario.Period, error) {
	o = o.withDefaults()
	tk, err := scenario.BuildTokyo(o.Seed, 10)
	if err != nil {
		return nil, scenario.Period{}, err
	}
	start := scenario.TokyoPeriod().Start
	p := scenario.Period{Label: "ablation", Start: start, End: start.AddDate(0, 0, days)}
	var series []*timeseries.Series
	for _, probe := range tk.ISPC.Probes {
		acc, err := scenario.SimulateProbeDelay(probe, p, o.TraceroutesPerBin, o.Seed)
		if err != nil {
			return nil, p, err
		}
		qd, err := acc.QueuingDelay(lastmile.DefaultMinTraceroutes)
		if err != nil {
			return nil, p, err
		}
		series = append(series, qd)
	}
	return series, p, nil
}

// AblationAggregation compares median vs mean population aggregation
// when one probe in an uncongested AS carries a diurnal artefact (its
// home Wi-Fi saturates every evening, inflating the private-side RTT by
// tens of ms). The median ignores the outlier; the mean reports phantom
// AS-level congestion.
func AblationAggregation(o Options) (*AblationResult, error) {
	o = o.withDefaults()
	series, p, err := ablationHealthyFleet(o, 6)
	if err != nil {
		return nil, err
	}
	// Replace one probe's series with the Wi-Fi pathology: a 25 ms bump
	// every evening, on an otherwise flat last mile.
	broken := series[0].Clone()
	rng := netsim.DerivedRand(o.Seed, 0xbad)
	for i := range broken.Values {
		h := broken.Start.Add(time.Duration(i) * broken.Step).UTC().Hour()
		v := rng.Float64() * 0.3
		if jst := (h + 9) % 24; jst >= 19 && jst < 24 {
			v += 25
		}
		broken.Values[i] = v
	}
	population := append([]*timeseries.Series{broken}, series[1:]...)

	classify := func(agg *timeseries.Series) (core.Class, float64, error) {
		cls, err := core.Classify(agg, core.DefaultClassifierOptions())
		if err != nil {
			return core.None, 0, err
		}
		return cls.Class, cls.DailyAmplitude, nil
	}
	medAgg, err := timeseries.AggregateMedian(population)
	if err != nil {
		return nil, err
	}
	meanAgg, err := timeseries.AggregateMean(population)
	if err != nil {
		return nil, err
	}
	medClass, medAmp, err := classify(medAgg)
	if err != nil {
		return nil, err
	}
	meanClass, meanAmp, err := classify(meanAgg)
	if err != nil {
		return nil, err
	}
	_ = p
	return &AblationResult{
		Name:   "population aggregation: healthy AS + one probe with evening Wi-Fi pathology",
		Choice: "median",
		Variants: []AblationVariant{
			{Label: "median", Value: medAmp, Note: fmt.Sprintf("daily amp (ms), class %v — outlier suppressed", medClass)},
			{Label: "mean", Value: meanAmp, Note: fmt.Sprintf("daily amp (ms), class %v — phantom congestion", meanClass)},
		},
		Verdict: "the median keeps a single pathological probe from flipping the AS-level verdict",
	}, nil
}

// AblationBinWidth compares the paper's 30-minute bins against 5-minute
// bins on a signal carrying only short transient bursts: large bins
// filter transients out (by design), small bins let them through to the
// spectrum.
func AblationBinWidth(o Options) (*AblationResult, error) {
	o = o.withDefaults()
	start := scenario.TokyoPeriod().Start
	days := 10
	rng := netsim.DerivedRand(o.Seed, 0xb1b)

	// Raw sample stream: flat 2 ms last mile with one random 10-minute
	// 8 ms burst per day (self-induced congestion, not persistent).
	build := func(width time.Duration) (*timeseries.Series, error) {
		end := start.AddDate(0, 0, days)
		binner, err := timeseries.NewMedianBinner(start, end, width)
		if err != nil {
			return nil, err
		}
		burstStart := make([]time.Duration, days)
		for d := range burstStart {
			burstStart[d] = time.Duration(rng.Int63n(int64(24 * time.Hour)))
		}
		for ts := start; ts.Before(end); ts = ts.Add(time.Minute) {
			day := int(ts.Sub(start) / (24 * time.Hour))
			offset := ts.Sub(start) % (24 * time.Hour)
			v := 2 + rng.Float64()*0.2
			if offset >= burstStart[day] && offset < burstStart[day]+10*time.Minute {
				v += 8
			}
			binner.AddGroup(ts, []float64{v, v + 0.05, v - 0.05})
		}
		qd, err := timeseries.SubtractMin(binner.Series(1))
		if err != nil {
			return nil, err
		}
		return qd, nil
	}
	amp := func(s *timeseries.Series) (float64, error) {
		filled, err := dsp.Interpolate(s.Values)
		if err != nil {
			return 0, err
		}
		pg, err := dsp.Welch(filled, s.SampleRatePerHour(), dsp.WelchDefaults())
		if err != nil {
			return 0, err
		}
		peak, _ := pg.ProminentPeak()
		return peak.P2P, nil
	}
	wide, err := build(30 * time.Minute)
	if err != nil {
		return nil, err
	}
	narrow, err := build(5 * time.Minute)
	if err != nil {
		return nil, err
	}
	wideAmp, err := amp(wide)
	if err != nil {
		return nil, err
	}
	narrowAmp, err := amp(narrow)
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Name:   "bin width under transient (non-persistent) bursts",
		Choice: "30-minute bins",
		Variants: []AblationVariant{
			{Label: "30-minute bins", Value: wideAmp, Note: "prominent peak amplitude (ms) — bursts median-filtered away"},
			{Label: "5-minute bins", Value: narrowAmp, Note: "bursts survive into the spectrum"},
		},
		Verdict: "large bins implement the paper's 'focus only on long-lasting congestion' directly in the binning",
	}, nil
}

// AblationWelch measures the variance of the daily-amplitude estimate —
// the quantity every class boundary thresholds — for Welch versus a
// single full-length periodogram, under bursty heavy-tailed noise. The
// effect is modest for stationary noise (both estimators are unbiased at
// an on-bin frequency) but consistently favours segment averaging.
func AblationWelch(o Options) (*AblationResult, error) {
	o = o.withDefaults()
	const trials = 80
	const trueP2P = 0.8
	amps := func(opts dsp.WelchOptions) ([]float64, error) {
		out := make([]float64, 0, trials)
		for trial := 0; trial < trials; trial++ {
			rng := netsim.DerivedRand(o.Seed, 0x3e1c, uint64(trial))
			xs := make([]float64, 720)
			for i := range xs {
				hours := float64(i) / 2
				noise := math.Abs(rng.NormFloat64()) * 0.6
				if rng.Float64() < 0.03 {
					noise += netsim.Lognormal(rng, 1.0, 0.6)
				}
				xs[i] = trueP2P/2*(1+math.Sin(2*math.Pi*hours/24)) + noise
			}
			pg, err := dsp.Welch(xs, 2, opts)
			if err != nil {
				return nil, err
			}
			amp, _, _ := pg.AmplitudeAt(core.DailyFreq)
			out = append(out, amp)
		}
		return out, nil
	}
	welchAmps, err := amps(dsp.WelchDefaults())
	if err != nil {
		return nil, err
	}
	singleAmps, err := amps(dsp.WelchOptions{SegmentLength: 720, Window: dsp.Hann})
	if err != nil {
		return nil, err
	}
	rmse := func(xs []float64) float64 {
		sum := 0.0
		for _, v := range xs {
			sum += (v - trueP2P) * (v - trueP2P)
		}
		return math.Sqrt(sum / float64(len(xs)))
	}
	return &AblationResult{
		Name:   "daily-amplitude RMSE (0.8 ms truth) under bursty noise",
		Choice: "Welch (192-sample segments, 50% overlap)",
		Variants: []AblationVariant{
			{Label: "welch", Value: rmse(welchAmps), Note: "RMSE of the thresholded amplitude (ms)"},
			{Label: "single periodogram", Value: rmse(singleAmps), Note: "RMSE (ms)"},
		},
		Verdict: "a null result, reported honestly: for an on-bin sinusoid under stationary noise the two estimators perform alike — the paper's Welch choice buys robustness on real nonstationary traces and costs nothing here",
	}, nil
}

// AblationThresholds sweeps the classifier's amplitude cut-offs around
// the paper's 0.5/1/3 ms on a fixed survey, showing how the class sizes
// the paper balanced respond. The 0.5 ms floor is the load-bearing
// choice: halving it more than doubles the reported count by promoting
// noise-level daily wiggles.
func AblationThresholds(o Options) (*AblationResult, error) {
	o = o.withDefaults()
	cfg := scenario.DefaultConfig(o.Seed)
	cfg.ASes = 160
	cfg.TraceroutesPerBin = o.TraceroutesPerBin
	cfg.Workers = o.Workers
	world, err := scenario.Build(cfg)
	if err != nil {
		return nil, err
	}
	survey, err := world.RunSurvey(scenario.LongitudinalPeriods()[5])
	if err != nil {
		return nil, err
	}
	count := func(th core.Thresholds) int {
		n := 0
		for _, res := range survey.Results {
			if res.IsDaily && res.DailyAmplitude > th.Low {
				n++
			}
		}
		return n
	}
	paper := core.DefaultThresholds()
	half := core.Thresholds{Low: 0.25, Mild: 1, Severe: 3}
	double := core.Thresholds{Low: 1.0, Mild: 2, Severe: 4}
	return &AblationResult{
		Name:   "reported-AS count vs Low threshold (fixed 2019-09 survey)",
		Choice: "Low > 0.5 ms",
		Variants: []AblationVariant{
			{Label: "Low > 0.25 ms", Value: float64(count(half)), Note: "reported ASes — noise-level wiggles promoted"},
			{Label: "Low > 0.5 ms (paper)", Value: float64(count(paper)), Note: "reported ASes"},
			{Label: "Low > 1.0 ms", Value: float64(count(double)), Note: "reported ASes — misses the Low class entirely"},
		},
		Verdict: "0.5 ms isolates the distribution tail the paper targets; the survey's headline counts are threshold-sensitive below it",
	}, nil
}

// AblationEstimator compares the paper's 9-pairwise-sample estimator
// against a min-RTT-difference estimator on a congested probe: min-min
// systematically underestimates queuing delay because the per-hop minima
// dodge the queue.
func AblationEstimator(o Options) (*AblationResult, error) {
	o = o.withDefaults()
	tk, err := scenario.BuildTokyo(o.Seed, 10)
	if err != nil {
		return nil, err
	}
	probe := tk.ISPA.Probes[0]
	route := probe.LastMileRoute()
	// Evening sample: the device queues. Compare expected estimates.
	at := time.Date(2019, 9, 19, 12, 0, 0, 0, time.UTC) // 21:00 JST
	const rounds = 2000
	var pairwiseSum, minDiffSum float64
	rng := netsim.DerivedRand(o.Seed, 0xab1a)
	for k := 0; k < rounds; k++ {
		var priv, pub [3]float64
		for i := 0; i < 3; i++ {
			v, ok, err := route.RTT(0, at, rng)
			if err != nil {
				return nil, err
			}
			if !ok {
				v = math.NaN()
			}
			priv[i] = v
		}
		for i := 0; i < 3; i++ {
			v, ok, err := route.RTT(1, at, rng)
			if err != nil {
				return nil, err
			}
			if !ok {
				v = math.NaN()
			}
			pub[i] = v
		}
		samples := lastmile.PairwiseFromRTTs(priv[:], pub[:])
		med := stats.MedianIgnoringNaN(samples)
		if !math.IsNaN(med) {
			pairwiseSum += med
		}
		minDiff := stats.MinIgnoringNaN(pub[:]) - stats.MinIgnoringNaN(priv[:])
		if !math.IsNaN(minDiff) {
			minDiffSum += minDiff
		}
	}
	return &AblationResult{
		Name:   "last-mile estimator at peak hour (congested legacy device)",
		Choice: "median of 9 pairwise samples",
		Variants: []AblationVariant{
			{Label: "pairwise median", Value: pairwiseSum / rounds, Note: "mean estimate (ms)"},
			{Label: "min-RTT difference", Value: minDiffSum / rounds, Note: "mean estimate (ms) — biased low, dodges the queue"},
		},
		Verdict: "pairwise sampling preserves the queuing delay the detector needs; min-based estimates underestimate it",
	}, nil
}

// AblationDiscard compares the <3-traceroutes bin filter on and off for
// a flapping probe that is online for only a sliver of some bins: without
// the filter, bins with a lone traceroute inject spurious medians.
func AblationDiscard(o Options) (*AblationResult, error) {
	o = o.withDefaults()
	start := scenario.TokyoPeriod().Start
	end := start.AddDate(0, 0, 8)
	acc, err := lastmile.NewProbeAccumulator(1, start, end, lastmile.DefaultBinWidth)
	if err != nil {
		return nil, err
	}
	rng := netsim.DerivedRand(o.Seed, 0xd15c)
	// A healthy flat last mile measured by a flapping probe: most bins
	// get 6 traceroutes, 15% of bins catch only a single traceroute —
	// and those lone traceroutes land during reconnection, when the CPE
	// itself inflates RTTs by tens of ms.
	for bin := start; bin.Before(end); bin = bin.Add(lastmile.DefaultBinWidth) {
		if rng.Float64() < 0.15 {
			acc.AddSamples(bin.Add(time.Minute), []float64{50 + rng.Float64()*20})
			continue
		}
		for k := 0; k < 6; k++ {
			base := 2 + rng.Float64()*0.3
			acc.AddSamples(bin.Add(time.Duration(k)*4*time.Minute),
				[]float64{base, base + 0.1, base - 0.1})
		}
	}
	variance := func(minTraceroutes int) (float64, error) {
		qd, err := acc.QueuingDelay(minTraceroutes)
		if err != nil {
			return 0, err
		}
		s, err := stats.Summarize(qd.Values)
		if err != nil {
			return 0, err
		}
		return s.P95, nil
	}
	with, err := variance(lastmile.DefaultMinTraceroutes)
	if err != nil {
		return nil, err
	}
	without, err := variance(0)
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Name:   "per-bin traceroute sanity filter with a flapping probe",
		Choice: ">= 3 traceroutes per bin",
		Variants: []AblationVariant{
			{Label: "filter on (>=3)", Value: with, Note: "p95 queuing-delay estimate (ms)"},
			{Label: "filter off", Value: without, Note: "p95 (ms) — reconnection artefacts leak in"},
		},
		Verdict: "discarding thin bins removes disconnection artefacts before they reach the spectrum",
	}, nil
}

// RenderAblations runs every ablation and writes the results. The six
// ablations are independent (each derives its randomness from its own
// salt), so they fan out on o.Workers workers and render in the fixed
// order once all have finished.
func RenderAblations(w io.Writer, o Options) error {
	type ab func(Options) (*AblationResult, error)
	runs := []ab{AblationAggregation, AblationBinWidth, AblationWelch, AblationEstimator, AblationDiscard, AblationThresholds}
	results, err := parallel.Map(context.Background(), o.withDefaults().Workers, len(runs), func(i int) (*AblationResult, error) {
		return runs[i](o)
	})
	if err != nil {
		return err
	}
	for _, r := range results {
		if err := r.Render(w); err != nil {
			return err
		}
	}
	return nil
}
