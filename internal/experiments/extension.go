package experiments

import (
	"fmt"
	"io"
	"net/netip"

	"github.com/last-mile-congestion/lastmile/internal/core"
	"github.com/last-mile-congestion/lastmile/internal/isp"
	"github.com/last-mile-congestion/lastmile/internal/netsim"
	"github.com/last-mile-congestion/lastmile/internal/report"
	"github.com/last-mile-congestion/lastmile/internal/scenario"
	"github.com/last-mile-congestion/lastmile/internal/stats"
	"github.com/last-mile-congestion/lastmile/internal/timeseries"
)

// ExtensionV6DelayResult goes beyond the paper: Appendix C shows IPv6
// *throughput* escaping the PPPoE bottleneck via IPoE; this experiment
// measures the same effect on the *delay* side, with dual-stack probes
// tracerouting over both families in a legacy-PPPoE network.
type ExtensionV6DelayResult struct {
	Period string
	// V4 and V6 are the per-family aggregated queuing delays.
	V4, V6 *timeseries.Series
	// V4Amp and V6Amp are the daily peak-to-peak amplitudes.
	V4Amp, V6Amp float64
	Probes       int
}

// ExtensionV6Delay measures a legacy-PPPoE ISP's last mile over IPv4
// (PPPoE) and IPv6 (IPoE) with parallel probe fleets during the Tokyo
// case-study week.
func ExtensionV6Delay(o Options) (*ExtensionV6DelayResult, error) {
	o = o.withDefaults()
	network, err := isp.New(isp.NewLegacyPPPoE("ISP_A_ext", toASN(65190), "JP", 9,
		netip.MustParsePrefix("11.4.0.0/16"), netip.MustParsePrefix("2001:db8:e600::/48"),
		0.35))
	if err != nil {
		return nil, err
	}
	p := scenario.TokyoPeriod()
	devices := network.BuildDevices(netsim.MixSeed(o.Seed, uint64(network.ASN)), 0)
	const probes = 8

	run := func(af int, idBase int) (*timeseries.Series, float64, error) {
		fleet, err := scenario.BuildFleetAF(network, devices, probes, idBase, o.Seed, af)
		if err != nil {
			return nil, 0, err
		}
		res, err := scenario.SimulatePopulationDelayWorkers(fleet, p, o.TraceroutesPerBin, o.Seed, o.Workers)
		if err != nil {
			return nil, 0, err
		}
		cls, err := classifySignal(res.Signal)
		if err != nil {
			return nil, 0, err
		}
		return res.Signal, cls, nil
	}
	v4, v4Amp, err := run(4, 400000)
	if err != nil {
		return nil, err
	}
	v6, v6Amp, err := run(6, 410000)
	if err != nil {
		return nil, err
	}
	return &ExtensionV6DelayResult{
		Period: p.Label,
		V4:     v4, V6: v6,
		V4Amp: v4Amp, V6Amp: v6Amp,
		Probes: probes,
	}, nil
}

// classifySignal returns the daily amplitude of a signal.
func classifySignal(s *timeseries.Series) (float64, error) {
	cls, err := core.Classify(s, core.DefaultClassifierOptions())
	if err != nil {
		return 0, err
	}
	return cls.DailyAmplitude, nil
}

// Render writes the extension's comparison.
func (r *ExtensionV6DelayResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Extension — IPv6 (IPoE) vs IPv4 (PPPoE) last-mile *delay*, legacy ISP, %s\n", r.Period)
	tb := report.NewTable("family", "daily amp (ms)", "median", "max", "signal")
	for _, row := range []struct {
		fam string
		s   *timeseries.Series
		amp float64
	}{
		{"IPv4 (PPPoE)", r.V4, r.V4Amp},
		{"IPv6 (IPoE)", r.V6, r.V6Amp},
	} {
		tb.AddRowf(row.fam,
			fmt.Sprintf("%.2f", row.amp),
			fmt.Sprintf("%.2f", stats.MedianIgnoringNaN(row.s.Values)),
			fmt.Sprintf("%.2f", stats.MaxIgnoringNaN(row.s.Values)),
			report.Sparkline(report.Downsample(row.s.Values, 48), 6))
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "=> the newer IPoE path carries IPv6 past the congested PPPoE gear — the delay-side view of Appendix C")
	fmt.Fprintln(w)
	return nil
}
