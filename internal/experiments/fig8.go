package experiments

import (
	"context"
	"fmt"
	"io"
	"net/netip"

	"github.com/last-mile-congestion/lastmile/internal/isp"
	"github.com/last-mile-congestion/lastmile/internal/netsim"
	"github.com/last-mile-congestion/lastmile/internal/parallel"
	"github.com/last-mile-congestion/lastmile/internal/report"
	"github.com/last-mile-congestion/lastmile/internal/scenario"
	"github.com/last-mile-congestion/lastmile/internal/stats"
	"github.com/last-mile-congestion/lastmile/internal/timeseries"
)

// Fig8Result compares ISP_D's probes against its datacenter anchor over
// the four periods of Appendix B.
type Fig8Result struct {
	Periods []string
	// ProbeWeekly and AnchorWeekly are Monday-to-Sunday delay folds per
	// period.
	ProbeWeekly, AnchorWeekly [][]float64
	ProbeCounts               []int
}

// fig8Periods are the Appendix B measurement periods.
func fig8Periods() []scenario.Period {
	all := scenario.AllPeriods()
	return []scenario.Period{all[3], all[4], all[5], all[6]} // 2019-03..2020-04
}

// Fig8 reproduces Figure 8: ISP_D relies on the legacy network, so its
// residential probes see peak-hour queuing while its anchor — in a
// datacenter, off the legacy plant — stays flat.
func Fig8(o Options) (*Fig8Result, error) {
	o = o.withDefaults()
	v4 := netip.MustParsePrefix("11.3.0.0/16")
	v6 := netip.MustParsePrefix("2001:db8:d400::/48")
	broadband, err := isp.New(isp.NewLegacyPPPoE("ISP_D", toASN(65104), "JP", 9, v4, v6, 0.90))
	if err != nil {
		return nil, err
	}
	dcNet, err := isp.New(isp.NewDatacenter("ISP_D_dc", toASN(65104), "JP", 9, v4, v6))
	if err != nil {
		return nil, err
	}

	// Per-period work fans out; rows come back in period order.
	type fig8Row struct {
		probeWeekly, anchorWeekly []float64
		probes                    int
	}
	periods := fig8Periods()
	rows, err := parallel.Map(context.Background(), o.Workers, len(periods), func(i int) (fig8Row, error) {
		p := periods[i]
		seed := netsim.MixSeed(o.Seed, uint64(broadband.ASN), scenario.PeriodIndex(p))
		devices := broadband.BuildDevices(seed, p.COVIDShift)
		// 6 probes in 2019, 7 in 2020-04, as in the figure legend.
		n := 6
		if p.COVIDShift > 0 {
			n = 7
		}
		probes, err := scenario.BuildFleet(broadband, devices, n, 300000, o.Seed)
		if err != nil {
			return fig8Row{}, err
		}
		res, err := scenario.SimulatePopulationDelayWorkers(probes, p, o.TraceroutesPerBin, o.Seed, o.Workers)
		if err != nil {
			return fig8Row{}, err
		}
		probeWeekly, err := timeseries.DayHourProfile(res.Signal)
		if err != nil {
			return fig8Row{}, err
		}

		anchorDevs := dcNet.BuildDevices(seed, p.COVIDShift)
		anchors, err := scenario.BuildFleet(dcNet, anchorDevs, 1, 310000, o.Seed)
		if err != nil {
			return fig8Row{}, err
		}
		anchors[0].IsAnchor = true
		anchors[0].Availability = 1
		anchorAcc, err := scenario.SimulateProbeDelay(anchors[0], p, o.TraceroutesPerBin, o.Seed)
		if err != nil {
			return fig8Row{}, err
		}
		anchorQD, err := anchorAcc.QueuingDelay(3)
		if err != nil {
			return fig8Row{}, err
		}
		anchorWeekly, err := timeseries.DayHourProfile(anchorQD)
		if err != nil {
			return fig8Row{}, err
		}
		return fig8Row{probeWeekly: probeWeekly, anchorWeekly: anchorWeekly, probes: res.Probes}, nil
	})
	if err != nil {
		return nil, err
	}

	r := &Fig8Result{}
	for i, row := range rows {
		r.Periods = append(r.Periods, periods[i].Label)
		r.ProbeWeekly = append(r.ProbeWeekly, row.probeWeekly)
		r.AnchorWeekly = append(r.AnchorWeekly, row.anchorWeekly)
		r.ProbeCounts = append(r.ProbeCounts, row.probes)
	}
	return r, nil
}

// Render writes the Fig. 8 view.
func (r *Fig8Result) Render(w io.Writer) error {
	fmt.Fprintln(w, "Fig. 8 — ISP_D probes vs anchor, weekly queuing delay (ms)")
	tb := report.NewTable("period", "probes", "probe max", "anchor max", "probes (Mon..Sun)", "anchor (Mon..Sun)")
	for i, period := range r.Periods {
		tb.AddRowf(period, r.ProbeCounts[i],
			fmt.Sprintf("%.1f", stats.MaxIgnoringNaN(r.ProbeWeekly[i])),
			fmt.Sprintf("%.2f", stats.MaxIgnoringNaN(r.AnchorWeekly[i])),
			report.Sparkline(report.Downsample(r.ProbeWeekly[i], 28), 6),
			report.Sparkline(report.Downsample(r.AnchorWeekly[i], 28), 6))
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}
