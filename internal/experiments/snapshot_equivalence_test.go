package experiments

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"github.com/last-mile-congestion/lastmile/internal/core"
	"github.com/last-mile-congestion/lastmile/internal/stream"
)

// Acceptance tests for the serializable-engine work on the realistic
// Tokyo dataset: a map-reduce replay (split K ways, merged) and a
// checkpointed replay (snapshot mid-stream, restore, continue) must
// both reproduce the uninterrupted pipeline's verdicts bit for bit.
// Together with TestBatchStreamReplayEquivalence this closes the
// square: batch ≡ stream ≡ merged shards ≡ restored checkpoint.

// surveysEqual asserts two surveys carry identical verdicts: class,
// probe count, daily flag, bit-identical amplitudes and signals.
func surveysEqual(t *testing.T, label string, got, want *core.Survey) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d results vs %d", label, got.Len(), want.Len())
	}
	for asn, w := range want.Results {
		g := got.Results[asn]
		if g == nil {
			t.Fatalf("%s: AS%v missing", label, asn)
		}
		if g.Class != w.Class || g.Probes != w.Probes || g.IsDaily != w.IsDaily {
			t.Fatalf("%s: AS%v verdict {%v,%d,%v} vs {%v,%d,%v}", label, asn,
				g.Class, g.Probes, g.IsDaily, w.Class, w.Probes, w.IsDaily)
		}
		if math.Float64bits(g.DailyAmplitude) != math.Float64bits(w.DailyAmplitude) {
			t.Fatalf("%s: AS%v amplitude %v vs %v", label, asn, g.DailyAmplitude, w.DailyAmplitude)
		}
		sameSeries(t, fmt.Sprintf("%s AS%v signal", label, asn), w.Signal, g.Signal)
	}
}

// TestSurveySplitMergeEquivalence replays the Tokyo period through
// RunSurveySharded at K ∈ {1, 2, 8}: the merged map-reduce survey must
// be bit-identical to the single-engine one.
func TestSurveySplitMergeEquivalence(t *testing.T) {
	results, start, end := buildReplayDataset(t)
	opts := core.SurveyOptions{Start: start, End: end}
	base, baseSkipped, err := core.RunSurveySharded("tokyo", results, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if base.Len() == 0 {
		t.Fatal("baseline survey classified no AS")
	}
	for _, split := range []int{2, 8} {
		got, skipped, err := core.RunSurveySharded("tokyo", results, split, opts)
		if err != nil {
			t.Fatalf("split=%d: %v", split, err)
		}
		if len(skipped) != len(baseSkipped) {
			t.Fatalf("split=%d: %d skips vs %d", split, len(skipped), len(baseSkipped))
		}
		surveysEqual(t, fmt.Sprintf("split=%d", split), got, base)
	}
}

// TestMonitorSnapshotRestoreEquivalence interrupts a streaming replay
// of the Tokyo period halfway: snapshot, restore into a fresh monitor,
// feed the rest. Every verdict must be bit-identical to a monitor that
// streamed the whole period without interruption.
func TestMonitorSnapshotRestoreEquivalence(t *testing.T) {
	results, start, end := buildReplayDataset(t)
	opts := stream.Options{Window: end.Sub(start)}

	uninterrupted := stream.NewMonitor(opts)
	for _, ar := range results {
		if err := uninterrupted.Observe(ar.ASN, ar.Result); err != nil {
			t.Fatal(err)
		}
	}

	first := stream.NewMonitor(opts)
	half := len(results) / 2
	for _, ar := range results[:half] {
		if err := first.Observe(ar.ASN, ar.Result); err != nil {
			t.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if err := first.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	resumed, err := stream.RestoreMonitor(bytes.NewReader(snap.Bytes()), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, ar := range results[half:] {
		if err := resumed.Observe(ar.ASN, ar.Result); err != nil {
			t.Fatal(err)
		}
	}

	if a, b := resumed.Stats(), uninterrupted.Stats(); a != b {
		t.Fatalf("stats diverged: %+v vs %+v", a, b)
	}
	wantVerdicts, wantSkipped := uninterrupted.ClassifyAll()
	gotVerdicts, gotSkipped := resumed.ClassifyAll()
	if len(gotVerdicts) != len(wantVerdicts) || len(gotSkipped) != len(wantSkipped) {
		t.Fatalf("%d verdicts/%d skips vs %d/%d",
			len(gotVerdicts), len(gotSkipped), len(wantVerdicts), len(wantSkipped))
	}
	for i, w := range wantVerdicts {
		g := gotVerdicts[i]
		if g.ASN != w.ASN || g.Class != w.Class || g.Probes != w.Probes || g.IsDaily != w.IsDaily {
			t.Fatalf("verdict %d: {%v,%v,%d,%v} vs {%v,%v,%d,%v}", i,
				g.ASN, g.Class, g.Probes, g.IsDaily, w.ASN, w.Class, w.Probes, w.IsDaily)
		}
		if math.Float64bits(g.DailyAmplitude) != math.Float64bits(w.DailyAmplitude) {
			t.Fatalf("verdict %d: amplitude %v vs %v", i, g.DailyAmplitude, w.DailyAmplitude)
		}
		sameSeries(t, fmt.Sprintf("AS%v signal", g.ASN), w.Signal, g.Signal)
	}
}
