package experiments

import "github.com/last-mile-congestion/lastmile/internal/bgp"

// toASN converts a literal AS number.
func toASN(n uint32) bgp.ASN { return bgp.ASN(n) }
