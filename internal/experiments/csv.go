package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/last-mile-congestion/lastmile/internal/apnic"
	"github.com/last-mile-congestion/lastmile/internal/core"
	"github.com/last-mile-congestion/lastmile/internal/report"
	"github.com/last-mile-congestion/lastmile/internal/timeseries"
)

// CSV export: every figure result can dump the series behind it as CSV,
// so the plots can be regenerated with external tooling — the interface
// the paper's public results server exposes.

// csvFile creates dir/name.csv.
func csvFile(dir, name string) (*os.File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return os.Create(filepath.Join(dir, name+".csv"))
}

// writeSeries dumps one series under the given file name.
func writeSeries(dir, name, column string, s *timeseries.Series) error {
	f, err := csvFile(dir, name)
	if err != nil {
		return err
	}
	defer f.Close()
	return report.WriteSeriesCSV(f, column, s)
}

// safe turns a label into a file-name fragment.
func safe(label string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, label)
}

// WriteCSV dumps the Fig. 1 aggregated delay signals, one file per ISP
// and period.
func (r *Fig1Result) WriteCSV(dir string) error {
	for _, group := range []struct {
		name     string
		profiles []PeriodProfile
	}{{"ISP_DE", r.DE}, {"ISP_US", r.US}} {
		for _, p := range group.profiles {
			name := fmt.Sprintf("fig1_%s_%s", group.name, safe(p.Period))
			if err := writeSeries(dir, name, "agg_queuing_delay_ms", p.Signal); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteCSV dumps the Fig. 2 periodograms as frequency/amplitude rows.
func (r *Fig2Result) WriteCSV(dir string) error {
	write := func(name string, views []PeriodogramView) error {
		for _, v := range views {
			f, err := csvFile(dir, fmt.Sprintf("fig2_%s_%s", name, safe(v.Period)))
			if err != nil {
				return err
			}
			fmt.Fprintln(f, "freq_cph,p2p_ms")
			for i := range v.Freqs {
				fmt.Fprintf(f, "%.6f,%.6f\n", v.Freqs[i], v.P2P[i])
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write("ISP_DE", r.DE); err != nil {
		return err
	}
	return write("ISP_US", r.US)
}

// WriteCSV dumps the Fig. 3 distributions: per period, sorted prominent
// frequencies and daily amplitudes (CDF x-values).
func (r *Fig3Result) WriteCSV(dir string) error {
	for i, period := range r.Periods {
		f, err := csvFile(dir, "fig3_freqs_"+safe(period))
		if err != nil {
			return err
		}
		fmt.Fprintln(f, "peak_freq_cph")
		for _, v := range r.PeakFreqs[i] {
			fmt.Fprintf(f, "%.6f\n", v)
		}
		if err := f.Close(); err != nil {
			return err
		}
		f, err = csvFile(dir, "fig3_amps_"+safe(period))
		if err != nil {
			return err
		}
		fmt.Fprintln(f, "daily_amp_ms")
		for _, v := range r.DailyAmps[i] {
			fmt.Fprintf(f, "%.6f\n", v)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV dumps the Fig. 4 bucket breakdown.
func (r *Fig4Result) WriteCSV(dir string) error {
	f, err := csvFile(dir, "fig4_breakdown")
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "period,bucket,ases,severe_pct,mild_pct,low_pct,none_pct")
	for _, bb := range []*core.BucketBreakdown{r.Sep2019, r.Apr2020} {
		for b := apnic.Bucket1to10; b < apnic.NumBuckets; b++ {
			fmt.Fprintf(f, "%s,%s,%d,%.2f,%.2f,%.2f,%.2f\n",
				bb.Period, b, bb.Totals[b],
				bb.Percent(b, core.Severe), bb.Percent(b, core.Mild),
				bb.Percent(b, core.Low), bb.Percent(b, core.None))
		}
	}
	return nil
}

// WriteCSV dumps the Fig. 5 delay series, one file per ISP.
func (r *Fig5Result) WriteCSV(dir string) error {
	for _, row := range []struct {
		name string
		s    *timeseries.Series
	}{{"ISP_A", r.DelayA}, {"ISP_B", r.DelayB}, {"ISP_C", r.DelayC}} {
		if err := writeSeries(dir, "fig5_"+row.name, "agg_queuing_delay_ms", row.s); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV dumps the Fig. 6 throughput series, one file per service arm.
func (r *Fig6Result) WriteCSV(dir string) error {
	for name, s := range r.Broadband {
		if err := writeSeries(dir, "fig6_"+safe(name)+"_broadband", "median_throughput_mbps", s); err != nil {
			return err
		}
	}
	for name, s := range r.Mobile {
		if err := writeSeries(dir, "fig6_"+safe(name)+"_mobile", "median_throughput_mbps", s); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV dumps the Fig. 7 scatter points.
func (r *Fig7Result) WriteCSV(dir string) error {
	for _, row := range []struct {
		name   string
		points [][2]float64
	}{{"ISP_A", r.PointsA}, {"ISP_C", r.PointsC}} {
		f, err := csvFile(dir, "fig7_"+row.name)
		if err != nil {
			return err
		}
		fmt.Fprintln(f, "agg_queuing_delay_ms,median_throughput_mbps")
		for _, p := range row.points {
			fmt.Fprintf(f, "%.4f,%.4f\n", p[0], p[1])
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV dumps the Fig. 8 weekly folds.
func (r *Fig8Result) WriteCSV(dir string) error {
	for i, period := range r.Periods {
		f, err := csvFile(dir, "fig8_"+safe(period))
		if err != nil {
			return err
		}
		fmt.Fprintln(f, "week_slot,probes_delay_ms,anchor_delay_ms")
		for slot := range r.ProbeWeekly[i] {
			fmt.Fprintf(f, "%d,%.4f,%.4f\n", slot, r.ProbeWeekly[i][slot], r.AnchorWeekly[i][slot])
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV dumps the Fig. 9 per-family throughput series.
func (r *Fig9Result) WriteCSV(dir string) error {
	for name, s := range r.V4 {
		if err := writeSeries(dir, "fig9_"+safe(name)+"_ipv4", "median_throughput_mbps", s); err != nil {
			return err
		}
	}
	for name, s := range r.V6 {
		if err := writeSeries(dir, "fig9_"+safe(name)+"_ipv6", "median_throughput_mbps", s); err != nil {
			return err
		}
	}
	return nil
}
