package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/last-mile-congestion/lastmile/internal/core"
	"github.com/last-mile-congestion/lastmile/internal/scenario"
)

// Survey persistence lets the expensive measurement step run once
// (lmexp -table headline -save dir) and the derived figures re-render
// from disk (lmexp -fig 3 -load dir) — the workflow the paper supports
// with its public results server.

// surveyFile names one period's file.
func surveyFile(dir, period string) string {
	return filepath.Join(dir, "survey-"+period+".json")
}

// SaveSurveys persists every survey of the set as JSON under dir.
func SaveSurveys(set *SurveySet, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, s := range set.AllSurveys() {
		f, err := os.Create(surveyFile(dir, s.Period))
		if err != nil {
			return err
		}
		if err := s.WriteJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("experiments: save %s: %w", s.Period, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// LoadSurveys reads a persisted survey set from dir. The world is
// rebuilt (cheap, deterministic) so rank/geography joins still work;
// the measurement results come from disk.
func LoadSurveys(o Options, dir string) (*SurveySet, error) {
	o = o.withDefaults()
	cfg := scenario.DefaultConfig(o.Seed)
	cfg.ASes = o.WorldASes
	world, err := scenario.Build(cfg)
	if err != nil {
		return nil, err
	}
	set := &SurveySet{World: world}
	load := func(period string) (*core.Survey, error) {
		f, err := os.Open(surveyFile(dir, period))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return core.ReadSurveyJSON(f)
	}
	for _, p := range scenario.LongitudinalPeriods() {
		s, err := load(p.Label)
		if err != nil {
			return nil, fmt.Errorf("experiments: load %s: %w", p.Label, err)
		}
		set.Longitudinal = append(set.Longitudinal, s)
	}
	covid, err := load(scenario.COVIDPeriod().Label)
	if err != nil {
		return nil, fmt.Errorf("experiments: load covid: %w", err)
	}
	set.COVID = covid
	return set, nil
}
