package experiments

import (
	"fmt"
	"io"
	"net/netip"

	"github.com/last-mile-congestion/lastmile/internal/core"
	"github.com/last-mile-congestion/lastmile/internal/isp"
	"github.com/last-mile-congestion/lastmile/internal/lastmile"
	"github.com/last-mile-congestion/lastmile/internal/netsim"
	"github.com/last-mile-congestion/lastmile/internal/report"
	"github.com/last-mile-congestion/lastmile/internal/scenario"
	"github.com/last-mile-congestion/lastmile/internal/timeseries"
)

// SensitivityResult operationalises the paper's first limitation (§5):
// "our inferences are made from vantage points that may not be
// representative of the AS they belong to, especially when the number of
// Atlas probes is low." For a mildly congested AS, it sweeps the probe
// deployment size and reports the bootstrap class stability at each —
// quantifying how many probes a trustworthy verdict needs.
type SensitivityResult struct {
	// FleetSizes are the swept deployments.
	FleetSizes []int
	// Results holds the bootstrap outcome per fleet size.
	Results []*core.BootstrapResult
}

// ProbeSensitivity runs the sweep on a Mild-class legacy network over the
// Tokyo week.
func ProbeSensitivity(o Options) (*SensitivityResult, error) {
	o = o.withDefaults()
	network, err := isp.New(isp.NewLegacyPPPoE("ISP_sens", toASN(65195), "JP", 9,
		netip.MustParsePrefix("11.5.0.0/16"), netip.MustParsePrefix("2001:db8:e700::/48"),
		0.22)) // mildly congested: the hard regime for small fleets
	if err != nil {
		return nil, err
	}
	p := scenario.TokyoPeriod()
	devices := network.BuildDevices(netsim.MixSeed(o.Seed, uint64(network.ASN)), 0)

	out := &SensitivityResult{}
	for _, n := range []int{3, 5, 10, 20, 40} {
		fleet, err := scenario.BuildFleet(network, devices, n, 500000+n*1000, o.Seed)
		if err != nil {
			return nil, err
		}
		var perProbe []*timeseries.Series
		for _, probe := range fleet {
			acc, err := scenario.SimulateProbeDelay(probe, p, o.TraceroutesPerBin, o.Seed)
			if err != nil {
				return nil, err
			}
			qd, err := acc.QueuingDelay(lastmile.DefaultMinTraceroutes)
			if err != nil {
				continue
			}
			perProbe = append(perProbe, qd)
		}
		boot, err := core.BootstrapAmplitude(perProbe, core.BootstrapOptions{Seed: o.Seed, Iterations: 150})
		if err != nil {
			return nil, err
		}
		out.FleetSizes = append(out.FleetSizes, n)
		out.Results = append(out.Results, boot)
	}
	return out, nil
}

// Render writes the sensitivity table.
func (r *SensitivityResult) Render(w io.Writer) error {
	fmt.Fprintln(w, "Probe-count sensitivity (§5 limitation #1): bootstrap stability of a Mild verdict")
	tb := report.NewTable("probes", "class", "daily amp (ms)", "90% CI", "class stability")
	for i, n := range r.FleetSizes {
		b := r.Results[i]
		tb.AddRowf(n, b.Class.String(),
			fmt.Sprintf("%.2f", b.Amplitude),
			fmt.Sprintf("%.2f - %.2f", b.CI90Low, b.CI90High),
			fmt.Sprintf("%.0f%%", 100*b.ClassStability))
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "=> CI width shrinks and class stability hardens as the deployment grows; verdicts from 3-probe ASes deserve the least trust")
	fmt.Fprintln(w)
	return nil
}
