package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"

	"github.com/last-mile-congestion/lastmile/internal/apnic"
	"github.com/last-mile-congestion/lastmile/internal/core"
	"github.com/last-mile-congestion/lastmile/internal/parallel"
	"github.com/last-mile-congestion/lastmile/internal/report"
	"github.com/last-mile-congestion/lastmile/internal/scenario"
)

// SurveySet is the expensive shared input of Fig. 3, Fig. 4 and the
// headline table: the full survey world measured over the six
// longitudinal periods and the COVID period.
type SurveySet struct {
	World        *scenario.World
	Longitudinal []*core.Survey
	COVID        *core.Survey
}

// RunSurveys builds the world and runs all seven surveys. The periods
// share one immutable world and every survey's draws are keyed by
// (seed, ASN, period), so the periods fan out on o.Workers workers with
// output identical to the serial run.
func RunSurveys(o Options) (*SurveySet, error) {
	o = o.withDefaults()
	cfg := scenario.DefaultConfig(o.Seed)
	cfg.ASes = o.WorldASes
	cfg.TraceroutesPerBin = o.TraceroutesPerBin
	cfg.Workers = o.Workers
	world, err := scenario.Build(cfg)
	if err != nil {
		return nil, err
	}
	longitudinal := scenario.LongitudinalPeriods()
	periods := make([]scenario.Period, 0, len(longitudinal)+1)
	periods = append(periods, longitudinal...)
	periods = append(periods, scenario.COVIDPeriod())
	surveys, err := parallel.Map(context.Background(), o.Workers, len(periods), func(i int) (*core.Survey, error) {
		s, err := world.RunSurvey(periods[i])
		if err != nil {
			return nil, fmt.Errorf("survey %s: %w", periods[i].Label, err)
		}
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	n := len(longitudinal)
	return &SurveySet{
		World:        world,
		Longitudinal: surveys[:n:n],
		COVID:        surveys[n],
	}, nil
}

// AllSurveys returns the longitudinal surveys plus the COVID one.
func (s *SurveySet) AllSurveys() []*core.Survey {
	out := make([]*core.Survey, 0, len(s.Longitudinal)+1)
	out = append(out, s.Longitudinal...)
	return append(out, s.COVID)
}

// septemberSurvey returns the September 2019 survey.
func (s *SurveySet) septemberSurvey() *core.Survey {
	for _, sv := range s.Longitudinal {
		if sv.Period == "2019-09" {
			return sv
		}
	}
	return s.Longitudinal[len(s.Longitudinal)-1]
}

// Fig3Result distributes the detector's two markers across all monitored
// ASes per period: the prominent frequency (top plot) and the daily
// peak-to-peak amplitude (bottom plot).
type Fig3Result struct {
	Periods []string
	// PeakFreqs[i] are the prominent frequencies (cycles/hour) of all
	// ASes in period i, sorted ascending.
	PeakFreqs [][]float64
	// DailyAmps[i] are the daily amplitudes (ms) of the ASes whose
	// prominent component is daily, sorted ascending — Fig. 3 bottom
	// distributes exactly this subset.
	DailyAmps [][]float64
	// AmpSplit is the fraction of daily-prominent ASes whose amplitude
	// falls in the paper's four bands (<0.5, 0.5–1, 1–3, >3 ms),
	// averaged over periods. The paper reports ≈83/7/6/4.
	AmpSplit [4]float64
	// DailyProminentFrac is the average fraction of ASes whose
	// prominent component is the daily bin (the paper: the majority).
	DailyProminentFrac float64
}

// Fig3From computes Figure 3 from the longitudinal surveys.
func Fig3From(set *SurveySet) *Fig3Result {
	nPeriods := len(set.Longitudinal)
	r := &Fig3Result{
		Periods:   make([]string, 0, nPeriods),
		PeakFreqs: make([][]float64, 0, nPeriods),
		DailyAmps: make([][]float64, 0, nPeriods),
	}
	var split [4]float64
	dailyFrac := 0.0
	for _, s := range set.Longitudinal {
		freqs := make([]float64, 0, s.Len())
		amps := make([]float64, 0, s.Len())
		var counts [4]int
		for _, res := range s.Results {
			if !math.IsNaN(res.Peak.Freq) {
				freqs = append(freqs, res.Peak.Freq)
			}
			if !res.IsDaily || math.IsNaN(res.DailyAmplitude) {
				continue
			}
			amps = append(amps, res.DailyAmplitude)
			switch {
			case res.DailyAmplitude <= 0.5:
				counts[0]++
			case res.DailyAmplitude <= 1:
				counts[1]++
			case res.DailyAmplitude <= 3:
				counts[2]++
			default:
				counts[3]++
			}
		}
		sort.Float64s(freqs)
		sort.Float64s(amps)
		r.Periods = append(r.Periods, s.Period)
		r.PeakFreqs = append(r.PeakFreqs, freqs)
		r.DailyAmps = append(r.DailyAmps, amps)
		if len(amps) > 0 {
			for i := range counts {
				split[i] += float64(counts[i]) / float64(len(amps))
			}
		}
		dailyFrac += float64(len(amps)) / float64(s.Len())
	}
	n := float64(len(set.Longitudinal))
	for i := range split {
		r.AmpSplit[i] = split[i] / n
	}
	r.DailyProminentFrac = dailyFrac / n
	return r
}

// Render writes the Fig. 3 view.
func (r *Fig3Result) Render(w io.Writer) error {
	fmt.Fprintln(w, "Fig. 3 — prominent frequency and daily amplitude across monitored ASes")
	tb := report.NewTable("period", "ASes", "daily-prominent", "freq CDF p25/p50/p75 (c/h)", "amp CDF p50/p90/p99 (ms)")
	for i, period := range r.Periods {
		freqs, amps := r.PeakFreqs[i], r.DailyAmps[i]
		tb.AddRowf(period, len(freqs),
			fmt.Sprintf("%.0f%%", 100*fracAtDaily(freqs)),
			fmt.Sprintf("%.3f/%.3f/%.3f", q(freqs, 0.25), q(freqs, 0.5), q(freqs, 0.75)),
			fmt.Sprintf("%.2f/%.2f/%.2f", q(amps, 0.5), q(amps, 0.9), q(amps, 0.99)))
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nDaily amplitude split (<0.5 / 0.5-1 / 1-3 / >3 ms): %.0f%% / %.0f%% / %.0f%% / %.0f%%  (paper: 83/7/6/4)\n",
		100*r.AmpSplit[0], 100*r.AmpSplit[1], 100*r.AmpSplit[2], 100*r.AmpSplit[3])
	fmt.Fprintf(w, "ASes with prominent daily component: %.0f%% (paper: the majority)\n\n", 100*r.DailyProminentFrac)
	return nil
}

// fracAtDaily returns the fraction of sorted frequencies within half a
// Welch bin of the daily frequency.
func fracAtDaily(sorted []float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	const tol = 1.0 / 96 / 2 // half of the 192-sample bin width at 2/h
	n := 0
	for _, f := range sorted {
		if f > core.DailyFreq-tol && f < core.DailyFreq+tol {
			n++
		}
	}
	return float64(n) / float64(len(sorted))
}

// q returns the type-7 quantile of a sorted slice.
func q(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	h := p * float64(len(sorted)-1)
	lo := int(h)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Fig4Result is the classification breakdown by APNIC rank bucket for
// September 2019 and April 2020.
type Fig4Result struct {
	Sep2019, Apr2020 *core.BucketBreakdown
}

// Fig4From computes Figure 4 from the survey set.
func Fig4From(set *SurveySet) *Fig4Result {
	return &Fig4Result{
		Sep2019: core.BreakdownByBucket(set.septemberSurvey(), set.World.Ranking),
		Apr2020: core.BreakdownByBucket(set.COVID, set.World.Ranking),
	}
}

// Render writes the Fig. 4 view.
func (r *Fig4Result) Render(w io.Writer) error {
	fmt.Fprintln(w, "Fig. 4 — classification breakdown by APNIC eyeball rank (percent of bucket)")
	for _, bb := range []*core.BucketBreakdown{r.Sep2019, r.Apr2020} {
		fmt.Fprintf(w, "\n%s:\n", bb.Period)
		tb := report.NewTable("bucket", "ASes", "Severe%", "Mild%", "Low%", "None%")
		for b := apnic.Bucket1to10; b < apnic.NumBuckets; b++ {
			tb.AddRowf(b.String(), bb.Totals[b],
				fmt.Sprintf("%.1f", bb.Percent(b, core.Severe)),
				fmt.Sprintf("%.1f", bb.Percent(b, core.Mild)),
				fmt.Sprintf("%.1f", bb.Percent(b, core.Low)),
				fmt.Sprintf("%.1f", bb.Percent(b, core.None)))
		}
		if err := tb.Render(w); err != nil {
			return err
		}
	}
	fmt.Fprintln(w)
	return nil
}

// HeadlineResult collects the §3 survey numbers.
type HeadlineResult struct {
	// MonitoredASes is the September 2019 monitored count.
	MonitoredASes int
	// NonePct is the average share of ASes classified None (paper ≈90%).
	NonePct float64
	// AvgReported is the mean reported-AS count per longitudinal period
	// (paper ≈47).
	AvgReported float64
	// ReportedAtLeastHalf counts ASes reported in ≥3 of the 6 periods
	// (paper: 36).
	ReportedAtLeastHalf int
	// ReportedSep2019 and ReportedApr2020 are the per-period reported
	// counts around the COVID comparison (paper: 45 → 70).
	ReportedSep2019, ReportedApr2020 int
	// COVIDIncreasePct is the relative growth (paper ≈+55%).
	COVIDIncreasePct float64
	// CountriesReported / CountriesSevere count countries with at least
	// one reported / Severe AS across 2018–2019 (paper: 53 and 23 of
	// 98).
	CountriesReported, CountriesSevere int
	// JPSevereShare and USSevereShare are national shares of all Severe
	// reports over 2018–2019 (paper: 18% and 8%).
	JPSevereShare, USSevereShare float64
	// JPTop10Reported and JPTop10Constant: of the 10 highest-ranked
	// monitored Japanese ASes, how many were reported at least once /
	// in at least half of the periods (paper: 5 and 3).
	JPTop10Reported, JPTop10Constant int
}

// HeadlineFrom computes the headline numbers from the survey set.
func HeadlineFrom(set *SurveySet) *HeadlineResult {
	r := &HeadlineResult{}
	sep := set.septemberSurvey()
	r.MonitoredASes = sep.Len()

	nonePct, avgRep := 0.0, 0.0
	for _, s := range set.Longitudinal {
		counts := s.CountByClass()
		nonePct += float64(counts[core.None]) / float64(s.Len())
		avgRep += float64(len(s.ReportedASes()))
	}
	n := float64(len(set.Longitudinal))
	r.NonePct = 100 * nonePct / n
	r.AvgReported = avgRep / n
	r.ReportedAtLeastHalf = core.ReportedAtLeast(set.Longitudinal, (len(set.Longitudinal)+1)/2)

	r.ReportedSep2019 = len(sep.ReportedASes())
	r.ReportedApr2020 = len(set.COVID.ReportedASes())
	if r.ReportedSep2019 > 0 {
		r.COVIDIncreasePct = 100 * float64(r.ReportedApr2020-r.ReportedSep2019) / float64(r.ReportedSep2019)
	}

	gb := core.BreakdownByCountry(set.Longitudinal, set.World.Ranking)
	r.CountriesReported, r.CountriesSevere = gb.CountriesWithReports()
	r.JPSevereShare = 100 * gb.SevereShare("JP")
	r.USSevereShare = 100 * gb.SevereShare("US")

	// Top-10 monitored Japanese ASes by APNIC rank.
	var jpASNs []struct {
		asn  int
		rank int
	}
	for _, a := range set.World.ASes {
		if a.Network.CC != "JP" {
			continue
		}
		rank, ok := set.World.Ranking.Rank(a.Network.ASN)
		if !ok {
			continue
		}
		jpASNs = append(jpASNs, struct {
			asn  int
			rank int
		}{int(a.Network.ASN), rank})
	}
	sort.Slice(jpASNs, func(i, j int) bool { return jpASNs[i].rank < jpASNs[j].rank })
	if len(jpASNs) > 10 {
		jpASNs = jpASNs[:10]
	}
	churn := core.Churn(set.Longitudinal)
	for _, jp := range jpASNs {
		c := churn[toASN(uint32(jp.asn))]
		if c >= 1 {
			r.JPTop10Reported++
		}
		if c >= (len(set.Longitudinal)+1)/2 {
			r.JPTop10Constant++
		}
	}
	return r
}

// Render writes the headline table with the paper's values alongside.
func (r *HeadlineResult) Render(w io.Writer) error {
	fmt.Fprintln(w, "Headline survey numbers (§3)")
	tb := report.NewTable("metric", "measured", "paper")
	tb.AddRowf("monitored ASes (2019-09)", r.MonitoredASes, "646 (total)")
	tb.AddRowf("ASes classified None", fmt.Sprintf("%.0f%%", r.NonePct), "~90%")
	tb.AddRowf("avg reported ASes per period", fmt.Sprintf("%.1f", r.AvgReported), "47")
	tb.AddRowf("ASes reported >= half of periods", r.ReportedAtLeastHalf, "36")
	tb.AddRowf("reported ASes 2019-09", r.ReportedSep2019, "45")
	tb.AddRowf("reported ASes 2020-04", r.ReportedApr2020, "70")
	tb.AddRowf("COVID increase", fmt.Sprintf("%+.0f%%", r.COVIDIncreasePct), "+55%")
	tb.AddRowf("countries with >=1 report", r.CountriesReported, "53")
	tb.AddRowf("countries with >=1 Severe", r.CountriesSevere, "23")
	tb.AddRowf("JP share of Severe reports", fmt.Sprintf("%.0f%%", r.JPSevereShare), "18%")
	tb.AddRowf("US share of Severe reports", fmt.Sprintf("%.0f%%", r.USSevereShare), "8%")
	tb.AddRowf("JP top-10 ASes reported >=once", r.JPTop10Reported, "5")
	tb.AddRowf("JP top-10 ASes constantly reported", r.JPTop10Constant, "3")
	if err := tb.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}
