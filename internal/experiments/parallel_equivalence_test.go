package experiments

import (
	"fmt"
	"math"
	"testing"

	"github.com/last-mile-congestion/lastmile/internal/core"
	"github.com/last-mile-congestion/lastmile/internal/timeseries"
)

// These tests are the determinism contract that makes the parallel path
// safe: a serial run (Workers: 1) and a wide run (Workers: 8) must agree
// bit for bit on every survey verdict and every Tokyo series. Signals
// carry NaN gap bins, so floats are compared by bit pattern.

func sameF64s(t *testing.T, label string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s[%d]: %v vs %v", label, i, a[i], b[i])
		}
	}
}

func sameSeries(t *testing.T, label string, a, b *timeseries.Series) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: nil mismatch (serial %v, parallel %v)", label, a != nil, b != nil)
	}
	if a == nil {
		return
	}
	if !a.Start.Equal(b.Start) || a.Step != b.Step {
		t.Fatalf("%s: axis differs: (%v, %v) vs (%v, %v)", label, a.Start, a.Step, b.Start, b.Step)
	}
	sameF64s(t, label, a.Values, b.Values)
}

func sameSurvey(t *testing.T, label string, a, b *core.Survey) {
	t.Helper()
	if a.Period != b.Period {
		t.Fatalf("%s: period %q vs %q", label, a.Period, b.Period)
	}
	if len(a.Results) != len(b.Results) {
		t.Fatalf("%s: AS count %d vs %d", label, len(a.Results), len(b.Results))
	}
	for asn, ra := range a.Results {
		rb := b.Results[asn]
		if rb == nil {
			t.Fatalf("%s: AS%v present serially, missing in parallel run", label, asn)
		}
		if ra.Probes != rb.Probes || ra.Class != rb.Class || ra.IsDaily != rb.IsDaily {
			t.Fatalf("%s: AS%v verdict differs: {%d, %v, %v} vs {%d, %v, %v}", label, asn,
				ra.Probes, ra.Class, ra.IsDaily, rb.Probes, rb.Class, rb.IsDaily)
		}
		if math.Float64bits(ra.DailyAmplitude) != math.Float64bits(rb.DailyAmplitude) {
			t.Fatalf("%s: AS%v daily amplitude %v vs %v", label, asn, ra.DailyAmplitude, rb.DailyAmplitude)
		}
		if fmt.Sprintf("%#v", ra.Peak) != fmt.Sprintf("%#v", rb.Peak) {
			t.Fatalf("%s: AS%v peak %#v vs %#v", label, asn, ra.Peak, rb.Peak)
		}
		sameSeries(t, fmt.Sprintf("%s AS%v signal", label, asn), ra.Signal, rb.Signal)
	}
}

// equivOpts is reduced further than smallOpts: both tests here run their
// whole experiment twice.
func equivOpts(workers int) Options {
	return Options{
		Seed:              2020,
		WorldASes:         100,
		FleetSize:         24,
		CDNClients:        100,
		TraceroutesPerBin: 3,
		Workers:           workers,
	}
}

func TestRunSurveysWorkerEquivalence(t *testing.T) {
	serial, err := RunSurveys(equivOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	wide, err := RunSurveys(equivOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Longitudinal) != len(wide.Longitudinal) {
		t.Fatalf("longitudinal count %d vs %d", len(serial.Longitudinal), len(wide.Longitudinal))
	}
	for i := range serial.Longitudinal {
		sameSurvey(t, serial.Longitudinal[i].Period, serial.Longitudinal[i], wide.Longitudinal[i])
	}
	sameSurvey(t, "COVID", serial.COVID, wide.COVID)
}

func TestRunTokyoWorkerEquivalence(t *testing.T) {
	serial, err := RunTokyo(equivOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	wide, err := RunTokyo(equivOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []struct {
		name string
		a, b *timeseries.Series
		an   int
		bn   int
	}{
		{"DelayA", serial.DelayA.Signal, wide.DelayA.Signal, serial.DelayA.Probes, wide.DelayA.Probes},
		{"DelayB", serial.DelayB.Signal, wide.DelayB.Signal, serial.DelayB.Probes, wide.DelayB.Probes},
		{"DelayC", serial.DelayC.Signal, wide.DelayC.Signal, serial.DelayC.Probes, wide.DelayC.Probes},
	} {
		if d.an != d.bn {
			t.Fatalf("%s probes %d vs %d", d.name, d.an, d.bn)
		}
		sameSeries(t, d.name, d.a, d.b)
	}
	for _, s := range []struct {
		name string
		a, b *timeseries.Series
	}{
		{"ThrA", serial.ThrA, wide.ThrA},
		{"ThrB", serial.ThrB, wide.ThrB},
		{"ThrC", serial.ThrC, wide.ThrC},
		{"ThrAMobile", serial.ThrAMobile, wide.ThrAMobile},
		{"ThrBMobile", serial.ThrBMobile, wide.ThrBMobile},
		{"ThrCMobile", serial.ThrCMobile, wide.ThrCMobile},
		{"ThrA30", serial.ThrA30, wide.ThrA30},
		{"ThrC30", serial.ThrC30, wide.ThrC30},
		{"ThrA4", serial.ThrA4, wide.ThrA4},
		{"ThrA6", serial.ThrA6, wide.ThrA6},
		{"ThrB4", serial.ThrB4, wide.ThrB4},
		{"ThrB6", serial.ThrB6, wide.ThrB6},
		{"ThrC4", serial.ThrC4, wide.ThrC4},
		{"ThrC6", serial.ThrC6, wide.ThrC6},
	} {
		sameSeries(t, s.name, s.a, s.b)
	}
	if serial.UniqueIPs != wide.UniqueIPs {
		t.Fatalf("UniqueIPs %d vs %d", serial.UniqueIPs, wide.UniqueIPs)
	}
}
