package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestExtensionV6Delay(t *testing.T) {
	r, err := ExtensionV6Delay(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.V4Amp < 3 {
		t.Fatalf("IPv4 (PPPoE) daily amp = %.2f, want Severe-range", r.V4Amp)
	}
	if r.V6Amp > 0.5 {
		t.Fatalf("IPv6 (IPoE) daily amp = %.2f, want flat", r.V6Amp)
	}
	if r.V4.Len() != r.V6.Len() {
		t.Fatal("family signals misaligned")
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestSurveyPersistRoundTrip(t *testing.T) {
	set := runSmallSurveys(t)
	dir := filepath.Join(t.TempDir(), "runs")
	if err := SaveSurveys(set, dir); err != nil {
		t.Fatal(err)
	}
	// Seven files on disk.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 7 {
		t.Fatalf("files = %d, want 7", len(entries))
	}
	loaded, err := LoadSurveys(smallOpts(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Longitudinal) != 6 || loaded.COVID == nil {
		t.Fatal("loaded set incomplete")
	}
	// The derived artefacts agree between live and loaded sets.
	liveHeadline := HeadlineFrom(set)
	loadedHeadline := HeadlineFrom(loaded)
	if liveHeadline.ReportedSep2019 != loadedHeadline.ReportedSep2019 ||
		liveHeadline.ReportedApr2020 != loadedHeadline.ReportedApr2020 ||
		liveHeadline.CountriesSevere != loadedHeadline.CountriesSevere {
		t.Fatalf("headline differs after round trip:\nlive   %+v\nloaded %+v",
			liveHeadline, loadedHeadline)
	}
	liveFig3 := Fig3From(set)
	loadedFig3 := Fig3From(loaded)
	if liveFig3.AmpSplit != loadedFig3.AmpSplit {
		t.Fatalf("fig3 split differs: %v vs %v", liveFig3.AmpSplit, loadedFig3.AmpSplit)
	}
}

func TestLoadSurveysMissingDir(t *testing.T) {
	if _, err := LoadSurveys(smallOpts(), filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("want error for missing directory")
	}
}

func TestProbeSensitivity(t *testing.T) {
	r, err := ProbeSensitivity(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.FleetSizes) != 5 || r.FleetSizes[0] != 3 || r.FleetSizes[4] != 40 {
		t.Fatalf("fleet sizes = %v", r.FleetSizes)
	}
	// CI width at the largest fleet must be tighter than at the
	// smallest — the quantified §5 limitation.
	small := r.Results[0]
	large := r.Results[len(r.Results)-1]
	smallWidth := small.CI90High - small.CI90Low
	largeWidth := large.CI90High - large.CI90Low
	if largeWidth >= smallWidth {
		t.Fatalf("CI width should shrink with probes: %d probes %.2f vs %d probes %.2f",
			r.FleetSizes[0], smallWidth, r.FleetSizes[4], largeWidth)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCSVAllFigures(t *testing.T) {
	dir := t.TempDir()
	ts := runSmallTokyo(t)
	set := runSmallSurveys(t)
	f1 := smallFig1(t)
	f2, err := Fig2From(f1)
	if err != nil {
		t.Fatal(err)
	}
	f8, err := Fig8(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	writers := []interface{ WriteCSV(string) error }{
		f1, f2,
		Fig3From(set), Fig4From(set),
		Fig5From(ts), Fig6From(ts), Fig7From(ts), Fig9From(ts),
		f8,
	}
	for i, w := range writers {
		if err := w.WriteCSV(dir); err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// 14 fig1 + 14 fig2 + 12 fig3 + 1 fig4 + 3 fig5 + 6 fig6 + 2 fig7 +
	// 4 fig8 + 6 fig9 = 62 files.
	if len(entries) < 50 {
		t.Fatalf("csv files = %d, want the full figure set", len(entries))
	}
	// Spot check one file has a header and rows.
	data, err := os.ReadFile(filepath.Join(dir, "fig4_breakdown.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 11 { // header + 2 periods x 5 buckets
		t.Fatalf("fig4 rows = %d", len(lines))
	}
}
