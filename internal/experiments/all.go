package experiments

import (
	"fmt"
	"io"
)

// RenderAll reproduces every figure and table in paper order, sharing the
// expensive inputs (survey set, Fig. 1 signals, Tokyo run) across the
// figures that derive from them.
func RenderAll(w io.Writer, o Options) error {
	o = o.withDefaults()

	fmt.Fprintln(w, "== Figures 1 & 2 ==")
	f1, err := Fig1(o)
	if err != nil {
		return fmt.Errorf("fig1: %w", err)
	}
	if err := f1.Render(w); err != nil {
		return err
	}
	f2, err := Fig2From(f1)
	if err != nil {
		return fmt.Errorf("fig2: %w", err)
	}
	if err := f2.Render(w); err != nil {
		return err
	}

	fmt.Fprintln(w, "== Survey (Figures 3 & 4, headline table) ==")
	set, err := RunSurveys(o)
	if err != nil {
		return fmt.Errorf("surveys: %w", err)
	}
	if err := Fig3From(set).Render(w); err != nil {
		return err
	}
	if err := Fig4From(set).Render(w); err != nil {
		return err
	}
	if err := HeadlineFrom(set).Render(w); err != nil {
		return err
	}

	fmt.Fprintln(w, "== Tokyo case study (Figures 5, 6, 7, 9) ==")
	ts, err := RunTokyo(o)
	if err != nil {
		return fmt.Errorf("tokyo: %w", err)
	}
	if err := Fig5From(ts).Render(w); err != nil {
		return err
	}
	if err := Fig6From(ts).Render(w); err != nil {
		return err
	}
	if err := Fig7From(ts).Render(w); err != nil {
		return err
	}
	if err := Fig9From(ts).Render(w); err != nil {
		return err
	}

	fmt.Fprintln(w, "== Appendix B (Figure 8) ==")
	f8, err := Fig8(o)
	if err != nil {
		return fmt.Errorf("fig8: %w", err)
	}
	if err := f8.Render(w); err != nil {
		return err
	}

	fmt.Fprintln(w, "== Extension: IPv6 last-mile delay ==")
	ext, err := ExtensionV6Delay(o)
	if err != nil {
		return fmt.Errorf("v6delay: %w", err)
	}
	if err := ext.Render(w); err != nil {
		return err
	}

	fmt.Fprintln(w, "== Extension: probe-count sensitivity (§5) ==")
	sens, err := ProbeSensitivity(o)
	if err != nil {
		return fmt.Errorf("sensitivity: %w", err)
	}
	return sens.Render(w)
}
