package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/timeseries"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("period", "probes", "amp")
	tb.AddRow("2019-09", "324", "0.41")
	tb.AddRowf("2020-04", 345, 1.19)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.Contains(lines[0], "period") || !strings.Contains(lines[0], "amp") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[3], "345") || !strings.Contains(lines[3], "1.19") {
		t.Fatalf("row = %q", lines[3])
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("a", "b", "c")
	tb.AddRow("x")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "x") {
		t.Fatal("missing cell")
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	start := time.Date(2019, 9, 19, 0, 0, 0, 0, time.UTC)
	s, _ := timeseries.NewSeries(start, 30*time.Minute, 3)
	s.Values[0] = 1.5
	s.Values[2] = 2.25
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, "delay_ms", s); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[0] != "time,delay_ms" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasSuffix(lines[1], ",1.5000") {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if !strings.HasSuffix(lines[2], ",") {
		t.Fatalf("NaN row = %q, want empty value", lines[2])
	}
	if !strings.HasPrefix(lines[1], "2019-09-19T00:00:00Z") {
		t.Fatalf("timestamp = %q", lines[1])
	}
}

func TestSparkline(t *testing.T) {
	out := Sparkline([]float64{0, 0.5, 1}, 1)
	runes := []rune(out)
	if len(runes) != 3 {
		t.Fatalf("runes = %d", len(runes))
	}
	if runes[0] != '▁' || runes[2] != '█' {
		t.Fatalf("sparkline = %q", out)
	}
	withNaN := Sparkline([]float64{math.NaN(), 1}, 1)
	if []rune(withNaN)[0] != ' ' {
		t.Fatalf("NaN glyph = %q", withNaN)
	}
	if got := Sparkline([]float64{0, 0}, 0); []rune(got)[0] != '▁' {
		t.Fatalf("all-zero sparkline = %q", got)
	}
}

func TestDownsample(t *testing.T) {
	vals := []float64{1, 1, 3, 3, 5, 5}
	out := Downsample(vals, 3)
	want := []float64{1, 3, 5}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v", out)
		}
	}
	// Shorter input passes through (as a copy).
	same := Downsample(vals, 10)
	if len(same) != 6 {
		t.Fatalf("len = %d", len(same))
	}
	same[0] = 99
	if vals[0] != 1 {
		t.Fatal("Downsample aliased input")
	}
	// NaN blocks stay NaN.
	nan := Downsample([]float64{math.NaN(), math.NaN(), 2, 2}, 2)
	if !math.IsNaN(nan[0]) || nan[1] != 2 {
		t.Fatalf("nan downsample = %v", nan)
	}
}

func TestSeriesSparkline(t *testing.T) {
	start := time.Date(2019, 9, 19, 0, 0, 0, 0, time.UTC)
	s, _ := timeseries.NewSeries(start, time.Hour, 48)
	for i := range s.Values {
		s.Values[i] = float64(i % 24)
	}
	out := SeriesSparkline("ISP_A", s, 24, 0)
	if !strings.HasPrefix(out, "ISP_A") {
		t.Fatalf("label missing: %q", out)
	}
	if len([]rune(out)) < 24 {
		t.Fatalf("too short: %q", out)
	}
}
