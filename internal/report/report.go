// Package report renders pipeline results for terminals and files: aligned
// text tables, CSV series dumps, and compact ASCII charts of delay and
// throughput signals. Every figure the experiments package reproduces is
// ultimately emitted through these helpers.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/timeseries"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted cells, one format per cell value.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(row...)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) error {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
		return err
	}
	if err := line(t.header); err != nil {
		return err
	}
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteSeriesCSV writes a time series as "time,value" rows (RFC 3339
// timestamps, NaN bins as empty values) — the format the paper's public
// result server uses for its plots.
func WriteSeriesCSV(w io.Writer, name string, s *timeseries.Series) error {
	if _, err := fmt.Fprintf(w, "time,%s\n", name); err != nil {
		return err
	}
	for i, v := range s.Values {
		val := ""
		if !math.IsNaN(v) {
			val = fmt.Sprintf("%.4f", v)
		}
		if _, err := fmt.Fprintf(w, "%s,%s\n", s.TimeAt(i).Format(time.RFC3339), val); err != nil {
			return err
		}
	}
	return nil
}

// sparkLevels are the glyphs used by Sparkline, lowest to highest.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a one-line unicode chart. NaN values render
// as spaces. The scale runs from 0 to max(values) unless maxVal > 0 is
// given.
func Sparkline(values []float64, maxVal float64) string {
	if maxVal <= 0 {
		for _, v := range values {
			if !math.IsNaN(v) && v > maxVal {
				maxVal = v
			}
		}
	}
	var sb strings.Builder
	for _, v := range values {
		switch {
		case math.IsNaN(v):
			sb.WriteRune(' ')
		case maxVal <= 0:
			sb.WriteRune(sparkLevels[0])
		default:
			idx := int(v / maxVal * float64(len(sparkLevels)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkLevels) {
				idx = len(sparkLevels) - 1
			}
			sb.WriteRune(sparkLevels[idx])
		}
	}
	return sb.String()
}

// SeriesSparkline renders a series as a labelled sparkline, downsampling
// to at most width points by averaging.
func SeriesSparkline(label string, s *timeseries.Series, width int, maxVal float64) string {
	vals := Downsample(s.Values, width)
	return fmt.Sprintf("%-14s %s", label, Sparkline(vals, maxVal))
}

// Downsample reduces values to at most n points by block averaging,
// skipping NaNs; blocks that are entirely NaN stay NaN.
func Downsample(values []float64, n int) []float64 {
	if n <= 0 || len(values) <= n {
		out := make([]float64, len(values))
		copy(out, values)
		return out
	}
	out := make([]float64, n)
	block := float64(len(values)) / float64(n)
	for i := 0; i < n; i++ {
		lo := int(float64(i) * block)
		hi := int(float64(i+1) * block)
		if hi > len(values) {
			hi = len(values)
		}
		sum, cnt := 0.0, 0
		for _, v := range values[lo:hi] {
			if !math.IsNaN(v) {
				sum += v
				cnt++
			}
		}
		if cnt == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = sum / float64(cnt)
		}
	}
	return out
}
