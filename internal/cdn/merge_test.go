package cdn

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/timeseries"
)

// randomLogDay builds a pseudo-random day of log entries: nIPs clients
// issuing nEntries requests with mixed sizes, durations, and cache
// outcomes, so both the accept and reject paths carry load.
func randomLogDay(rng *rand.Rand, nIPs, nEntries int) []LogEntry {
	ips := make([]netip.Addr, nIPs)
	for i := range ips {
		ips[i] = netip.MustParseAddr(fmt.Sprintf("20.1.%d.%d", i/250, 1+i%250))
	}
	entries := make([]LogEntry, nEntries)
	for i := range entries {
		cache := Hit
		if rng.Intn(5) == 0 {
			cache = Miss
		}
		entries[i] = LogEntry{
			Timestamp:  start.Add(time.Duration(rng.Intn(24 * 3600 * 1000)) * time.Millisecond),
			ClientIP:   ips[rng.Intn(len(ips))],
			Bytes:      int64(rng.Intn(10_000_000)),
			DurationMs: float64(rng.Intn(5000)) + rng.Float64(),
			Status:     200,
			Cache:      cache,
		}
	}
	return entries
}

func mergeTestEstimator(t testing.TB) *Estimator {
	t.Helper()
	e, err := NewEstimator(start, start.AddDate(0, 0, 1), ThroughputOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// shardByIP splits entries across k estimators keyed by client address,
// so each IP's accumulator sees its adds in stream order within one
// shard — the sharding discipline a map-reduce log replay must use for
// the merge to be bit-exact (float sums are not associative across
// arbitrary splits of one IP's requests).
func shardByIP(t testing.TB, entries []LogEntry, k int) []*Estimator {
	t.Helper()
	shards := make([]*Estimator, k)
	for i := range shards {
		shards[i] = mergeTestEstimator(t)
	}
	for i := range entries {
		h := entries[i].ClientIP.As16()
		shards[(int(h[14])*31+int(h[15]))%k].Add(&entries[i])
	}
	return shards
}

func sameSeriesBits(t *testing.T, label string, a, b *timeseries.Series) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: length %d vs %d", label, a.Len(), b.Len())
	}
	for i := range a.Values {
		if math.Float64bits(a.Values[i]) != math.Float64bits(b.Values[i]) {
			t.Fatalf("%s: bin %d: %v vs %v", label, i, a.Values[i], b.Values[i])
		}
	}
}

// TestEstimatorMergeIsShardedReplay is the map-reduce property for the
// CDN side, as quick-checked properties over random log days: an
// IP-sharded split replayed through K estimators and merged is
// bit-identical to a single estimator fed the whole stream, and the
// merge commutes and associates.
func TestEstimatorMergeIsShardedReplay(t *testing.T) {
	property := func(seed int64, kRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + int(kRaw)%7
		entries := randomLogDay(rng, 40, 200+int(nRaw))

		single := mergeTestEstimator(t)
		for i := range entries {
			single.Add(&entries[i])
		}

		merged := shardByIP(t, entries, k)
		m := merged[0]
		for _, o := range merged[1:] {
			m.Merge(o)
		}
		if m.Accepted != single.Accepted || m.Rejected != single.Rejected {
			return false
		}
		if m.UniqueIPs() != single.UniqueIPs() {
			return false
		}
		got, want := m.Series(1), single.Series(1)
		for i := range want.Values {
			if math.Float64bits(got.Values[i]) != math.Float64bits(want.Values[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimatorMergeCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	entries := randomLogDay(rng, 30, 400)

	ab := shardByIP(t, entries, 2)
	ab[0].Merge(ab[1])
	ba := shardByIP(t, entries, 2)
	ba[1].Merge(ba[0])
	sameSeriesBits(t, "a⊕b vs b⊕a", ab[0].Series(1), ba[1].Series(1))
	if ab[0].Accepted != ba[1].Accepted || ab[0].Rejected != ba[1].Rejected {
		t.Fatalf("counters differ: %d/%d vs %d/%d",
			ab[0].Accepted, ab[0].Rejected, ba[1].Accepted, ba[1].Rejected)
	}
}

func TestEstimatorMergeAssociates(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	entries := randomLogDay(rng, 30, 400)

	// (a⊕b)⊕c
	left := shardByIP(t, entries, 3)
	left[0].Merge(left[1])
	left[0].Merge(left[2])
	// a⊕(b⊕c)
	right := shardByIP(t, entries, 3)
	right[1].Merge(right[2])
	right[0].Merge(right[1])
	sameSeriesBits(t, "(a⊕b)⊕c vs a⊕(b⊕c)", left[0].Series(1), right[0].Series(1))
}
