package cdn

import (
	"bytes"
	"compress/gzip"
	"math"
	"net/netip"
	"strings"
	"testing"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/ipnet"
	"github.com/last-mile-congestion/lastmile/internal/isp"
)

var (
	start = time.Date(2019, 9, 19, 0, 0, 0, 0, time.UTC)
	v4p   = netip.MustParsePrefix("20.1.0.0/16")
	v6p   = netip.MustParsePrefix("2001:db8:1::/48")
)

func entry(at time.Time, ip string, bytes int64, durMs float64, cache CacheStatus) LogEntry {
	return LogEntry{
		Timestamp:  at,
		ClientIP:   netip.MustParseAddr(ip),
		Bytes:      bytes,
		DurationMs: durMs,
		Status:     200,
		Cache:      cache,
	}
}

func TestThroughputMbps(t *testing.T) {
	e := entry(start, "20.1.0.5", 5_000_000, 1000, Hit)
	if got := e.ThroughputMbps(); math.Abs(got-40) > 1e-9 {
		t.Fatalf("throughput = %v, want 40", got)
	}
	e.DurationMs = 0
	if e.ThroughputMbps() != 0 {
		t.Fatal("zero duration should yield zero throughput")
	}
}

func TestLogEntryValidate(t *testing.T) {
	good := entry(start, "20.1.0.5", 100, 10, Hit)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Timestamp = time.Time{}
	if bad.Validate() == nil {
		t.Error("zero timestamp")
	}
	bad = good
	bad.ClientIP = netip.Addr{}
	if bad.Validate() == nil {
		t.Error("invalid IP")
	}
	bad = good
	bad.Bytes = -1
	if bad.Validate() == nil {
		t.Error("negative bytes")
	}
	bad = good
	bad.DurationMs = -1
	if bad.Validate() == nil {
		t.Error("negative duration")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	entries := []LogEntry{
		entry(start, "20.1.0.5", 5_000_000, 900.5, Hit),
		entry(start.Add(time.Minute), "2001:db8::1", 100, 12, Miss),
	}
	for i := range entries {
		if err := w.Write(&entries[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := NewScanner(&buf)
	var got []LogEntry
	for sc.Scan() {
		got = append(got, sc.Entry())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("scanned %d", len(got))
	}
	if got[0].ClientIP != entries[0].ClientIP || got[0].Bytes != entries[0].Bytes {
		t.Fatalf("entry 0 = %+v", got[0])
	}
	if got[0].DurationMs != 900.5 || got[0].Cache != Hit {
		t.Fatalf("entry 0 = %+v", got[0])
	}
	if got[1].Cache != Miss || !got[1].ClientIP.Is6() {
		t.Fatalf("entry 1 = %+v", got[1])
	}
	if !got[0].Timestamp.Equal(start) {
		t.Fatalf("timestamp = %v", got[0].Timestamp)
	}
}

func TestScannerBadInput(t *testing.T) {
	sc := NewScanner(strings.NewReader("ts_unix,client_ip,bytes,duration_ms,status,cache\nnope,1.2.3.4,1,1,200,HIT\n"))
	if sc.Scan() {
		t.Fatal("bad row should not scan")
	}
	if sc.Err() == nil {
		t.Fatal("want error")
	}
	cases := []string{
		"1,garbage,1,1,200,HIT",
		"1,1.2.3.4,-1,1,200,HIT",
		"1,1.2.3.4,1,-1,200,HIT",
		"1,1.2.3.4,1,1,xx,HIT",
	}
	for _, c := range cases {
		sc := NewScanner(strings.NewReader(c + "\n"))
		if sc.Scan() || sc.Err() == nil {
			t.Errorf("row %q should fail", c)
		}
	}
}

func TestWriterRejectsInvalid(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	bad := LogEntry{}
	if err := w.Write(&bad); err == nil {
		t.Fatal("want error")
	}
}

func TestEstimatorFilters(t *testing.T) {
	est, err := NewEstimator(start, start.Add(time.Hour), DefaultThroughputOptions())
	if err != nil {
		t.Fatal(err)
	}
	big := entry(start.Add(time.Minute), "20.1.0.5", 5_000_000, 1000, Hit)
	est.Add(&big)
	small := entry(start.Add(time.Minute), "20.1.0.6", 100_000, 100, Hit)
	est.Add(&small)
	miss := entry(start.Add(time.Minute), "20.1.0.7", 5_000_000, 1000, Miss)
	est.Add(&miss)
	outside := entry(start.Add(2*time.Hour), "20.1.0.8", 5_000_000, 1000, Hit)
	est.Add(&outside)
	if est.Accepted != 1 || est.Rejected != 3 {
		t.Fatalf("accepted=%d rejected=%d", est.Accepted, est.Rejected)
	}
	s := est.Series(1)
	if math.Abs(s.Values[0]-40) > 1e-9 {
		t.Fatalf("bin 0 = %v, want 40", s.Values[0])
	}
	if !math.IsNaN(s.Values[1]) {
		t.Fatal("empty bin should be NaN")
	}
}

func TestEstimatorMobileFilter(t *testing.T) {
	opts := DefaultThroughputOptions()
	var mobile ipnet.PrefixSet
	if err := mobile.AddString("20.9.0.0/16"); err != nil {
		t.Fatal(err)
	}
	opts.ExcludeMobile = &mobile
	est, _ := NewEstimator(start, start.Add(time.Hour), opts)
	fixed := entry(start, "20.1.0.5", 5_000_000, 1000, Hit)
	mob := entry(start, "20.9.0.5", 5_000_000, 500, Hit)
	est.Add(&fixed)
	est.Add(&mob)
	if est.Accepted != 1 {
		t.Fatalf("accepted = %d, want mobile dropped", est.Accepted)
	}
}

func TestEstimatorIncludeAndAF(t *testing.T) {
	opts := DefaultThroughputOptions()
	opts.Include = func(a netip.Addr) bool { return v4p.Contains(a) }
	est, _ := NewEstimator(start, start.Add(time.Hour), opts)
	in := entry(start, "20.1.0.5", 5_000_000, 1000, Hit)
	out := entry(start, "99.0.0.1", 5_000_000, 1000, Hit)
	est.Add(&in)
	est.Add(&out)
	if est.Accepted != 1 {
		t.Fatalf("accepted = %d", est.Accepted)
	}

	opts = DefaultThroughputOptions()
	opts.AF = 6
	est6, _ := NewEstimator(start, start.Add(time.Hour), opts)
	e4 := entry(start, "20.1.0.5", 5_000_000, 1000, Hit)
	e6 := entry(start, "2001:db8::5", 5_000_000, 1000, Hit)
	est6.Add(&e4)
	est6.Add(&e6)
	if est6.Accepted != 1 {
		t.Fatalf("af=6 accepted = %d", est6.Accepted)
	}
}

func TestEstimatorMedianAcrossIPs(t *testing.T) {
	est, _ := NewEstimator(start, start.Add(30*time.Minute), DefaultThroughputOptions())
	// Three IPs at 10, 40, 90 Mbps.
	rates := map[string]float64{"20.1.0.1": 10, "20.1.0.2": 40, "20.1.0.3": 90}
	for ip, mbps := range rates {
		durMs := float64(8_000_000) * 8 / 1e6 / mbps * 1000
		e := entry(start.Add(time.Minute), ip, 8_000_000, durMs, Hit)
		est.Add(&e)
	}
	s := est.Series(1)
	if math.Abs(s.Values[0]-40) > 0.5 {
		t.Fatalf("median = %v, want ~40", s.Values[0])
	}
	if est.UniqueIPs() != 3 {
		t.Fatalf("unique = %d", est.UniqueIPs())
	}
}

func TestEstimatorMinIPs(t *testing.T) {
	est, _ := NewEstimator(start, start.Add(30*time.Minute), DefaultThroughputOptions())
	e := entry(start, "20.1.0.1", 5_000_000, 1000, Hit)
	est.Add(&e)
	if !math.IsNaN(est.Series(2).Values[0]) {
		t.Fatal("bin with 1 IP should gap at minIPs=2")
	}
	if math.IsNaN(est.Series(1).Values[0]) {
		t.Fatal("bin should be present at minIPs=1")
	}
}

func TestEstimatorErrors(t *testing.T) {
	if _, err := NewEstimator(start, start, DefaultThroughputOptions()); err == nil {
		t.Fatal("empty range")
	}
	opts := DefaultThroughputOptions()
	opts.BinWidth = -time.Minute
	if _, err := NewEstimator(start, start.Add(time.Hour), opts); err == nil {
		t.Fatal("negative bin width")
	}
}

func buildGenerator(t *testing.T, cfg isp.Config, clients int) *Generator {
	t.Helper()
	n, err := isp.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &Generator{
		Network:                 n,
		Devices:                 n.BuildDevices(77, 0),
		Clients:                 clients,
		RequestsPerClientPerDay: 40,
		DualStackFrac:           0.5,
		Seed:                    77,
	}
}

func TestGeneratorProducesValidEntries(t *testing.T) {
	g := buildGenerator(t, isp.NewOwnFiber("ISP_C", 300, "JP", 9, v4p, v6p), 50)
	end := start.Add(6 * time.Hour)
	count, v6count := 0, 0
	err := g.Generate(start, end, func(e LogEntry) error {
		if err := e.Validate(); err != nil {
			return err
		}
		if e.Timestamp.Before(start) || !e.Timestamp.Before(end) {
			t.Fatalf("timestamp %v outside range", e.Timestamp)
		}
		if e.ClientIP.Is6() {
			v6count++
			if !v6p.Contains(e.ClientIP) {
				t.Fatalf("v6 client %v outside prefix", e.ClientIP)
			}
		} else if !v4p.Contains(e.ClientIP) {
			t.Fatalf("v4 client %v outside prefix", e.ClientIP)
		}
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count < 100 {
		t.Fatalf("only %d entries generated", count)
	}
	if v6count == 0 {
		t.Fatal("no dual-stack traffic generated")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	collect := func() []LogEntry {
		g := buildGenerator(t, isp.NewOwnFiber("ISP_C", 300, "JP", 9, v4p, v6p), 10)
		var out []LogEntry
		g.Generate(start, start.Add(3*time.Hour), func(e LogEntry) error {
			out = append(out, e)
			return nil
		})
		return out
	}
	a, b := collect(), collect()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestGeneratorErrors(t *testing.T) {
	g := &Generator{}
	if err := g.Generate(start, start.Add(time.Hour), nil); err == nil {
		t.Fatal("nil network must error")
	}
	g2 := buildGenerator(t, isp.NewOwnFiber("ISP_C", 300, "JP", 9, v4p, v6p), 5)
	if err := g2.Generate(start, start, nil); err == nil {
		t.Fatal("empty range must error")
	}
	g3 := buildGenerator(t, isp.NewOwnFiber("ISP_C", 300, "JP", 9, v4p, v6p), 5)
	g3.Clients = 0
	if err := g3.Generate(start, start.Add(time.Hour), nil); err == nil {
		t.Fatal("zero clients must error")
	}
}

func TestCongestionShowsInGeneratedThroughput(t *testing.T) {
	// A severely congested legacy ISP must show a clear peak-hour
	// throughput drop in its own generated logs.
	g := buildGenerator(t, isp.NewLegacyPPPoE("ISP_A", 100, "JP", 9, v4p, v6p, 0.95), 300)
	end := start.Add(48 * time.Hour)
	est, err := NewEstimator(start, end, DefaultThroughputOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Generate(start, end, func(e LogEntry) error {
		est.Add(&e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	s := est.Series(3)
	// Compare 21:00 JST (12:00 UTC) bins with 04:00 JST (19:00 UTC).
	peakIdx, _ := s.IndexOf(start.Add(12 * time.Hour))
	offIdx, _ := s.IndexOf(start.Add(19 * time.Hour))
	peak := s.Values[peakIdx]
	off := s.Values[offIdx]
	if math.IsNaN(peak) || math.IsNaN(off) {
		t.Fatalf("missing bins: peak=%v off=%v", peak, off)
	}
	if peak > off*0.7 {
		t.Fatalf("peak throughput %v vs off-peak %v: drop not visible", peak, off)
	}
}

func BenchmarkGeneratorDay(b *testing.B) {
	n, err := isp.New(isp.NewOwnFiber("ISP_C", 300, "JP", 9, v4p, v6p))
	if err != nil {
		b.Fatal(err)
	}
	g := &Generator{
		Network: n, Devices: n.BuildDevices(77, 0),
		Clients: 100, RequestsPerClientPerDay: 40, Seed: 77,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Generate(start, start.Add(24*time.Hour), func(LogEntry) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

func TestLogScannerReadsGzip(t *testing.T) {
	var plain bytes.Buffer
	w := NewWriter(&plain)
	e := entry(start, "20.1.0.5", 5_000_000, 900.5, Hit)
	if err := w.Write(&e); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var zipped bytes.Buffer
	zw := gzip.NewWriter(&zipped)
	if _, err := zw.Write(plain.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	sc := NewScanner(&zipped)
	if !sc.Scan() {
		t.Fatalf("scan failed: %v", sc.Err())
	}
	if sc.Entry().Bytes != 5_000_000 {
		t.Fatalf("entry = %+v", sc.Entry())
	}
}
