// Package cdn models the CDN access-log side of the paper's validation
// (§4): a log-entry model with a CSV codec, a log generator driven by the
// same netsim devices that shape the delay measurements, and the
// throughput estimator — median per-IP throughput of large cache-hit
// objects in 15-minute bins, with mobile prefixes removed.
package cdn

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"time"

	lmioutil "github.com/last-mile-congestion/lastmile/internal/ioutil"
)

// CacheStatus is the CDN cache outcome of a request.
type CacheStatus int

// Cache outcomes.
const (
	// Hit was served from the CDN edge cache. Only hits are usable for
	// access-throughput estimation: misses are bottlenecked at the
	// origin fetch, not the subscriber line.
	Hit CacheStatus = iota
	// Miss was fetched from origin.
	Miss
)

// String returns the log token for the status.
func (c CacheStatus) String() string {
	if c == Hit {
		return "HIT"
	}
	return "MISS"
}

// LogEntry is one CDN access-log record, reduced to the fields the
// estimator needs.
type LogEntry struct {
	// Timestamp is the request completion time.
	Timestamp time.Time
	// ClientIP is the subscriber address (v4 or v6).
	ClientIP netip.Addr
	// Bytes is the response body size.
	Bytes int64
	// DurationMs is the transfer duration in milliseconds.
	DurationMs float64
	// Status is the HTTP status code.
	Status int
	// Cache is the cache outcome.
	Cache CacheStatus
}

// ThroughputMbps returns the entry's transfer rate in Mbit/s, or 0 for a
// degenerate duration.
func (e *LogEntry) ThroughputMbps() float64 {
	if e.DurationMs <= 0 {
		return 0
	}
	return float64(e.Bytes) * 8 / 1e6 / (e.DurationMs / 1000)
}

// Validate checks the entry for structural sanity.
func (e *LogEntry) Validate() error {
	if e.Timestamp.IsZero() {
		return errors.New("cdn: zero timestamp")
	}
	if !e.ClientIP.IsValid() {
		return errors.New("cdn: invalid client address")
	}
	if e.Bytes < 0 {
		return errors.New("cdn: negative size")
	}
	if e.DurationMs < 0 {
		return errors.New("cdn: negative duration")
	}
	return nil
}

// csvHeader is the column layout of the CSV codec.
var csvHeader = []string{"ts_unix", "client_ip", "bytes", "duration_ms", "status", "cache"}

// Writer streams log entries as CSV.
type Writer struct {
	cw          *csv.Writer
	wroteHeader bool
}

// NewWriter wraps w for CSV output; the header row is written with the
// first entry.
func NewWriter(w io.Writer) *Writer {
	return &Writer{cw: csv.NewWriter(w)}
}

// Write appends one entry.
func (w *Writer) Write(e *LogEntry) error {
	if err := e.Validate(); err != nil {
		return err
	}
	if !w.wroteHeader {
		if err := w.cw.Write(csvHeader); err != nil {
			return err
		}
		w.wroteHeader = true
	}
	rec := []string{
		strconv.FormatInt(e.Timestamp.Unix(), 10),
		e.ClientIP.String(),
		strconv.FormatInt(e.Bytes, 10),
		strconv.FormatFloat(e.DurationMs, 'f', 3, 64),
		strconv.Itoa(e.Status),
		e.Cache.String(),
	}
	return w.cw.Write(rec)
}

// Flush flushes buffered output and reports any write error.
func (w *Writer) Flush() error {
	w.cw.Flush()
	return w.cw.Error()
}

// Scanner streams log entries from CSV produced by Writer (or any source
// with the same columns).
type Scanner struct {
	cr   *csv.Reader
	cur  LogEntry
	err  error
	line int
}

// NewScanner wraps r for CSV input, transparently decompressing
// gzip-compressed streams (access logs usually ship as .gz).
func NewScanner(r io.Reader) *Scanner {
	rd, err := lmioutil.MaybeGzip(r)
	if err != nil {
		s := &Scanner{cr: csv.NewReader(bufio.NewReader(r))}
		s.err = fmt.Errorf("cdn: %w", err)
		return s
	}
	cr := csv.NewReader(bufio.NewReader(rd))
	cr.FieldsPerRecord = len(csvHeader)
	return &Scanner{cr: cr}
}

// Scan advances to the next entry. It returns false at end of input or on
// the first error; check Err.
func (s *Scanner) Scan() bool {
	if s.err != nil {
		return false
	}
	for {
		rec, err := s.cr.Read()
		if err == io.EOF {
			return false
		}
		if err != nil {
			s.err = err
			return false
		}
		s.line++
		if rec[0] == csvHeader[0] { // header row
			continue
		}
		e, err := parseRecord(rec)
		if err != nil {
			s.err = fmt.Errorf("cdn: line %d: %w", s.line, err)
			return false
		}
		s.cur = e
		return true
	}
}

func parseRecord(rec []string) (LogEntry, error) {
	ts, err := strconv.ParseInt(rec[0], 10, 64)
	if err != nil {
		return LogEntry{}, fmt.Errorf("bad timestamp %q", rec[0])
	}
	ip, err := netip.ParseAddr(rec[1])
	if err != nil {
		return LogEntry{}, fmt.Errorf("bad client address %q", rec[1])
	}
	size, err := strconv.ParseInt(rec[2], 10, 64)
	if err != nil || size < 0 {
		return LogEntry{}, fmt.Errorf("bad size %q", rec[2])
	}
	dur, err := strconv.ParseFloat(rec[3], 64)
	if err != nil || dur < 0 {
		return LogEntry{}, fmt.Errorf("bad duration %q", rec[3])
	}
	status, err := strconv.Atoi(rec[4])
	if err != nil {
		return LogEntry{}, fmt.Errorf("bad status %q", rec[4])
	}
	cache := Miss
	if rec[5] == "HIT" {
		cache = Hit
	}
	return LogEntry{
		Timestamp:  time.Unix(ts, 0).UTC(),
		ClientIP:   ip.Unmap(),
		Bytes:      size,
		DurationMs: dur,
		Status:     status,
		Cache:      cache,
	}, nil
}

// Entry returns the entry parsed by the last successful Scan.
func (s *Scanner) Entry() LogEntry { return s.cur }

// Err returns the first error encountered, or nil at clean end of input.
func (s *Scanner) Err() error { return s.err }
