package cdn

import (
	"math/rand"
	"strings"
	"testing"
)

// Robustness: the CSV scanner must never panic on malformed input.
func TestLogScannerNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	seeds := []string{
		"ts_unix,client_ip,bytes,duration_ms,status,cache\n1,1.2.3.4,1,1,200,HIT\n",
		"a,b,c,d,e,f\n",
		",,,,,\n",
		"1,1.2.3.4,1,1,200\n", // short row
		"\"unterminated,1,1,1,200,HIT\n",
		strings.Repeat("x", 100000) + "\n",
	}
	for _, seed := range seeds {
		for trial := 0; trial < 100; trial++ {
			mut := []byte(seed)
			for k := 0; k < 1+rng.Intn(3); k++ {
				if len(mut) == 0 {
					break
				}
				switch rng.Intn(2) {
				case 0:
					mut[rng.Intn(len(mut))] = byte(rng.Intn(256))
				case 1:
					mut = mut[:rng.Intn(len(mut)+1)]
				}
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic on %q: %v", mut, r)
					}
				}()
				sc := NewScanner(strings.NewReader(string(mut)))
				for sc.Scan() {
					_ = sc.Entry()
				}
				_ = sc.Err()
			}()
		}
	}
}
