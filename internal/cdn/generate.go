package cdn

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/ipnet"
	"github.com/last-mile-congestion/lastmile/internal/isp"
	"github.com/last-mile-congestion/lastmile/internal/netsim"
)

// Generator synthesises CDN access logs for one network's client
// population. Every client is pinned to an aggregation device, and each
// request's transfer duration comes from that device's fair-share
// throughput at request time — so the logs carry the same congestion
// signal as the delay measurements.
type Generator struct {
	// Network is the subscriber population.
	Network *isp.Network
	// Devices are the period's device instances (from
	// Network.BuildDevices).
	Devices *isp.DeviceSet
	// Clients is the number of distinct subscriber IPs.
	Clients int
	// RequestsPerClientPerDay is the average request rate at flat
	// demand; the diurnal profile modulates it.
	RequestsPerClientPerDay float64
	// DualStackFrac is the fraction of clients that also request over
	// IPv6 (half their requests, mirroring happy-eyeballs behaviour).
	DualStackFrac float64
	// Seed drives all randomness.
	Seed uint64
}

// slotWidth is the generator's scheduling granularity.
const slotWidth = 15 * time.Minute

// Generate produces log entries over [start, end) in time order per
// client, calling emit for each. It stops at the first emit error.
func (g *Generator) Generate(start, end time.Time, emit func(LogEntry) error) error {
	if g.Network == nil || g.Devices == nil {
		return errors.New("cdn: generator needs a network and devices")
	}
	if g.Clients <= 0 {
		return errors.New("cdn: generator needs clients")
	}
	if !start.Before(end) {
		return errors.New("cdn: start must precede end")
	}
	rate := g.RequestsPerClientPerDay
	if rate <= 0 {
		rate = 24
	}
	profile := netsim.DefaultProfile(g.Network.UTCOffset)
	// Per-slot request probability at demand d: rate/day scaled so that
	// the average over the profile's day roughly matches the rate.
	slotsPerDay := float64(24*time.Hour) / float64(slotWidth)
	pBase := rate / slotsPerDay / 0.55 // 0.55 ≈ mean demand of the default profile

	for c := 0; c < g.Clients; c++ {
		v4, v6, err := g.clientAddrs(uint64(c))
		if err != nil {
			return err
		}
		dual := netsim.DerivedRand(g.Seed, uint64(c), 0xD0A1).Float64() < g.DualStackFrac
		for slot, t := 0, start; t.Before(end); slot, t = slot+1, t.Add(slotWidth) {
			rng := netsim.DerivedRand(g.Seed, uint64(c), uint64(slot))
			demand := profile.DemandAt(t)
			n := 0
			p := pBase * demand
			for p > 0 {
				if rng.Float64() < p {
					n++
				}
				p--
			}
			for k := 0; k < n; k++ {
				af := 4
				addr := v4
				if dual && v6.IsValid() && rng.Float64() < 0.5 {
					af = 6
					addr = v6
				}
				dev := g.Devices.DeviceFor(uint64(c), af)
				if dev == nil {
					return fmt.Errorf("cdn: no device for client %d af %d", c, af)
				}
				at := t.Add(time.Duration(rng.Int63n(int64(slotWidth))))
				e := g.request(addr, dev, at, rng)
				if err := emit(e); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// clientAddrs assigns deterministic subscriber addresses.
func (g *Generator) clientAddrs(c uint64) (v4, v6 netip.Addr, err error) {
	v4, err = ipnet.HostAt(g.Network.Prefix, c+100)
	if err != nil {
		return netip.Addr{}, netip.Addr{}, fmt.Errorf("cdn: %s: %w", g.Network.Name, err)
	}
	if g.Network.PrefixV6.IsValid() {
		v6, err = ipnet.HostAt(g.Network.PrefixV6, c+100)
		if err != nil {
			return netip.Addr{}, netip.Addr{}, fmt.Errorf("cdn: %s: %w", g.Network.Name, err)
		}
	}
	return v4, v6, nil
}

// request synthesises one transfer at time at through dev.
func (g *Generator) request(addr netip.Addr, dev *netsim.AggregationDevice, at time.Time, rng *rand.Rand) LogEntry {
	// Object mix: 70% small web assets, 30% large media segments. The
	// estimator's >3 MB filter selects the latter.
	var size int64
	if rng.Float64() < 0.7 {
		size = int64(2_000 + rng.Intn(900_000))
	} else {
		size = int64(3_500_000 + netsim.Lognormal(rng, 1.2, 0.7)*1_500_000)
	}
	cache := Hit
	if rng.Float64() < 0.08 {
		cache = Miss
	}
	thr := dev.ThroughputAt(at, rng) // Mbit/s
	durMs := float64(size) * 8 / 1e6 / thr * 1000
	// Server-side and origin latency overheads.
	durMs += 20 + rng.Float64()*30
	if cache == Miss {
		durMs += 150 + rng.Float64()*250
	}
	return LogEntry{
		Timestamp:  at,
		ClientIP:   addr,
		Bytes:      size,
		DurationMs: durMs,
		Status:     200,
		Cache:      cache,
	}
}
