package cdn

import (
	"errors"
	"net/netip"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/ipnet"
	"github.com/last-mile-congestion/lastmile/internal/stats"
	"github.com/last-mile-congestion/lastmile/internal/timeseries"
)

// DefaultMinBytes is the paper's object-size filter: only transfers over
// 3 MB are large enough for TCP to reach steady state (§4.2).
const DefaultMinBytes = 3_000_000

// DefaultThroughputBin is the paper's 15-minute throughput bin.
const DefaultThroughputBin = 15 * time.Minute

// ThroughputOptions configures EstimateThroughput.
type ThroughputOptions struct {
	// MinBytes drops transfers smaller than this (default 3 MB).
	MinBytes int64
	// RequireCacheHit drops origin fetches (default in
	// DefaultThroughputOptions; the zero value keeps everything).
	RequireCacheHit bool
	// BinWidth is the aggregation bin (default 15 minutes).
	BinWidth time.Duration
	// Include restricts the estimate to matching client addresses —
	// typically "belongs to this AS". Nil includes everything.
	Include func(netip.Addr) bool
	// ExcludeMobile drops clients covered by these prefixes, the
	// paper's mobile-prefix filter. Nil disables the filter.
	ExcludeMobile *ipnet.PrefixSet
	// AF restricts to one address family (4 or 6); 0 keeps both.
	AF int
}

// DefaultThroughputOptions returns the paper's §4.2 filters.
func DefaultThroughputOptions() ThroughputOptions {
	return ThroughputOptions{
		MinBytes:        DefaultMinBytes,
		RequireCacheHit: true,
		BinWidth:        DefaultThroughputBin,
	}
}

// Estimator accumulates log entries and produces the median-throughput
// series. It implements the paper's aggregation: throughput is measured
// per IP, then the AS aggregate is the median across per-IP values in
// each bin.
type Estimator struct {
	opts  ThroughputOptions
	start time.Time
	bins  []map[netip.Addr]*ipAccum
	// Accepted and Rejected count entries across the filters.
	Accepted, Rejected int
}

type ipAccum struct {
	sum float64
	n   int
}

// NewEstimator creates an estimator covering [start, end).
func NewEstimator(start, end time.Time, opts ThroughputOptions) (*Estimator, error) {
	if opts.BinWidth == 0 {
		opts.BinWidth = DefaultThroughputBin
	}
	if opts.BinWidth < 0 {
		return nil, errors.New("cdn: negative bin width")
	}
	if opts.MinBytes == 0 {
		opts.MinBytes = DefaultMinBytes
	}
	if !start.Before(end) {
		return nil, errors.New("cdn: start must precede end")
	}
	n := int(end.Sub(start) / opts.BinWidth)
	if end.Sub(start)%opts.BinWidth != 0 {
		n++
	}
	bins := make([]map[netip.Addr]*ipAccum, n)
	return &Estimator{opts: opts, start: start, bins: bins}, nil
}

// Add feeds one log entry through the filters.
func (e *Estimator) Add(entry *LogEntry) {
	if !e.accept(entry) {
		e.Rejected++
		return
	}
	i := int(entry.Timestamp.Sub(e.start) / e.opts.BinWidth)
	if i < 0 || i >= len(e.bins) {
		e.Rejected++
		return
	}
	if e.bins[i] == nil {
		e.bins[i] = make(map[netip.Addr]*ipAccum)
	}
	acc := e.bins[i][entry.ClientIP]
	if acc == nil {
		acc = &ipAccum{}
		e.bins[i][entry.ClientIP] = acc
	}
	acc.sum += entry.ThroughputMbps()
	acc.n++
	e.Accepted++
}

func (e *Estimator) accept(entry *LogEntry) bool {
	if entry.Bytes < e.opts.MinBytes {
		return false
	}
	if e.opts.RequireCacheHit && entry.Cache != Hit {
		return false
	}
	if entry.DurationMs <= 0 {
		return false
	}
	addr := entry.ClientIP
	if e.opts.AF == 4 && !addr.Is4() {
		return false
	}
	if e.opts.AF == 6 && addr.Is4() {
		return false
	}
	if e.opts.Include != nil && !e.opts.Include(addr) {
		return false
	}
	if e.opts.ExcludeMobile != nil && e.opts.ExcludeMobile.Contains(addr) {
		return false
	}
	return true
}

// Merge folds other — an estimator with the same configuration and
// range, fed a different slice of the log stream — into e. Per-IP
// accumulators are summed bin by bin. When no client address appears in
// more than one shard (the Tokyo arms draw clients from disjoint
// prefixes), the merged estimator is exactly what a single estimator
// fed the whole stream would hold: per-IP sums then see the same adds
// in the same order, and Series sorts per-IP means before the median,
// so shard order cannot show through.
func (e *Estimator) Merge(other *Estimator) {
	for i, bin := range other.bins {
		if bin == nil {
			continue
		}
		if e.bins[i] == nil {
			e.bins[i] = make(map[netip.Addr]*ipAccum, len(bin))
		}
		for ip, acc := range bin {
			dst := e.bins[i][ip]
			if dst == nil {
				dst = &ipAccum{}
				e.bins[i][ip] = dst
			}
			dst.sum += acc.sum
			dst.n += acc.n
		}
	}
	e.Accepted += other.Accepted
	e.Rejected += other.Rejected
}

// Series returns the per-bin median of per-IP mean throughput in Mbit/s.
// Bins with fewer than minIPs distinct clients become gaps.
func (e *Estimator) Series(minIPs int) *timeseries.Series {
	out, err := timeseries.NewSeries(e.start, e.opts.BinWidth, len(e.bins))
	if err != nil {
		panic("cdn: invalid estimator state: " + err.Error())
	}
	var perIP []float64
	for i, bin := range e.bins {
		if len(bin) < minIPs || len(bin) == 0 {
			continue
		}
		perIP = perIP[:0]
		//lmvet:ignore dettaint median is an order statistic: MedianInPlace selects by value, so per-IP accumulation order cannot show through
		for _, acc := range bin {
			perIP = append(perIP, acc.sum/float64(acc.n))
		}
		if m, err := stats.MedianInPlace(perIP); err == nil {
			out.Values[i] = m
		}
	}
	return out
}

// UniqueIPs returns the number of distinct client addresses accepted.
func (e *Estimator) UniqueIPs() int {
	seen := make(map[netip.Addr]struct{})
	for _, bin := range e.bins {
		for ip := range bin {
			seen[ip] = struct{}{}
		}
	}
	return len(seen)
}
