// Package ipnet provides the IP address utilities the last-mile pipeline
// needs: private/special-purpose address classification (to find the
// boundary between the home network and the ISP edge in a traceroute), a
// binary radix trie with longest-prefix match (to map probe addresses to
// origin ASes, as the paper does against BGP data), and prefix sets (to
// strip mobile prefixes from CDN logs).
package ipnet

import (
	"fmt"
	"net/netip"
)

// Well-known special-purpose blocks. Initialised once at package load; all
// literals are valid so MustParsePrefix cannot panic here.
var (
	rfc1918 = []netip.Prefix{
		netip.MustParsePrefix("10.0.0.0/8"),
		netip.MustParsePrefix("172.16.0.0/12"),
		netip.MustParsePrefix("192.168.0.0/16"),
	}
	cgnat     = netip.MustParsePrefix("100.64.0.0/10")
	linkLocal = netip.MustParsePrefix("169.254.0.0/16")
	loopback4 = netip.MustParsePrefix("127.0.0.0/8")
	ulaV6     = netip.MustParsePrefix("fc00::/7")
	linkV6    = netip.MustParsePrefix("fe80::/10")
)

// IsRFC1918 reports whether addr falls in one of the three RFC 1918
// private IPv4 blocks.
func IsRFC1918(addr netip.Addr) bool {
	if !addr.Is4() && !addr.Is4In6() {
		return false
	}
	a := addr.Unmap()
	for _, p := range rfc1918 {
		if p.Contains(a) {
			return true
		}
	}
	return false
}

// IsPrivate reports whether addr should be treated as belonging to the
// subscriber side of the last mile: RFC 1918, CGNAT (RFC 6598), link-local,
// loopback, IPv6 ULA, or IPv6 link-local. The paper identifies the ISP edge
// as the first hop that is NOT one of these.
func IsPrivate(addr netip.Addr) bool {
	if !addr.IsValid() {
		return false
	}
	a := addr.Unmap()
	if a.Is4() {
		return IsRFC1918(a) || cgnat.Contains(a) || linkLocal.Contains(a) || loopback4.Contains(a)
	}
	return ulaV6.Contains(a) || linkV6.Contains(a) || a.IsLoopback()
}

// IsPublic reports whether addr is a valid, globally routable unicast
// address (the paper's "first public IP").
func IsPublic(addr netip.Addr) bool {
	if !addr.IsValid() || addr.IsUnspecified() || addr.IsMulticast() {
		return false
	}
	return !IsPrivate(addr)
}

// ParseAddr parses s into a netip.Addr, unmapping IPv4-in-IPv6 forms so
// that equal addresses compare equal.
func ParseAddr(s string) (netip.Addr, error) {
	a, err := netip.ParseAddr(s)
	if err != nil {
		return netip.Addr{}, fmt.Errorf("ipnet: %w", err)
	}
	return a.Unmap(), nil
}

// AddrBit returns bit i (0 = most significant) of addr's binary
// representation. It panics if i is out of range for the address family.
func AddrBit(addr netip.Addr, i int) byte {
	bytes := addr.As16()
	off := 0
	if addr.Is4() {
		bytes16 := addr.As4()
		if i < 0 || i >= 32 {
			panic(fmt.Sprintf("ipnet: bit %d out of range for IPv4", i))
		}
		return (bytes16[i/8] >> (7 - i%8)) & 1
	}
	if i < 0 || i >= 128 {
		panic(fmt.Sprintf("ipnet: bit %d out of range for IPv6", i))
	}
	return (bytes[off+i/8] >> (7 - i%8)) & 1
}

// HostAt returns the n-th host address inside prefix (0 = network
// address). It returns an error when n exceeds the prefix's host space.
// The scenario generator uses it to hand out deterministic addresses.
func HostAt(prefix netip.Prefix, n uint64) (netip.Addr, error) {
	bits := prefix.Addr().BitLen()
	hostBits := bits - prefix.Bits()
	if hostBits < 64 && hostBits >= 0 {
		max := uint64(1) << uint(hostBits)
		if hostBits != 0 && n >= max {
			return netip.Addr{}, fmt.Errorf("ipnet: host index %d exceeds /%d prefix", n, prefix.Bits())
		}
		if hostBits == 0 && n > 0 {
			return netip.Addr{}, fmt.Errorf("ipnet: host index %d exceeds /%d prefix", n, prefix.Bits())
		}
	}
	if prefix.Addr().Is4() {
		b := prefix.Masked().Addr().As4()
		v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
		v += uint32(n)
		return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}), nil
	}
	b := prefix.Masked().Addr().As16()
	// Add n to the low 64 bits; prefixes used by the generator are /64 or
	// shorter, so the carry never propagates past bit 64 in practice.
	var low uint64
	for i := 8; i < 16; i++ {
		low = low<<8 | uint64(b[i])
	}
	low += n
	for i := 15; i >= 8; i-- {
		b[i] = byte(low)
		low >>= 8
	}
	return netip.AddrFrom16(b), nil
}
