package ipnet

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func mustAddr(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestIsRFC1918(t *testing.T) {
	cases := []struct {
		addr string
		want bool
	}{
		{"10.0.0.1", true},
		{"10.255.255.255", true},
		{"172.16.0.1", true},
		{"172.31.255.1", true},
		{"172.32.0.1", false},
		{"192.168.1.1", true},
		{"192.169.0.1", false},
		{"8.8.8.8", false},
		{"100.64.0.1", false}, // CGNAT is not RFC1918
		{"2001:db8::1", false},
	}
	for _, c := range cases {
		if got := IsRFC1918(mustAddr(t, c.addr)); got != c.want {
			t.Errorf("IsRFC1918(%s) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestIsPrivate(t *testing.T) {
	cases := []struct {
		addr string
		want bool
	}{
		{"192.168.0.10", true},
		{"100.64.12.1", true},  // CGNAT
		{"169.254.0.5", true},  // link-local
		{"127.0.0.1", true},    // loopback
		{"fd00::1", true},      // ULA
		{"fe80::1", true},      // v6 link-local
		{"::1", true},          // v6 loopback
		{"203.0.113.5", false}, // public (TEST-NET but treated public here)
		{"2001:db8::1", false},
	}
	for _, c := range cases {
		if got := IsPrivate(mustAddr(t, c.addr)); got != c.want {
			t.Errorf("IsPrivate(%s) = %v, want %v", c.addr, got, c.want)
		}
	}
	if IsPrivate(netip.Addr{}) {
		t.Error("invalid address must not be private")
	}
}

func TestIsPublic(t *testing.T) {
	if !IsPublic(mustAddr(t, "8.8.8.8")) {
		t.Error("8.8.8.8 should be public")
	}
	if IsPublic(mustAddr(t, "10.1.2.3")) {
		t.Error("10.1.2.3 should not be public")
	}
	if IsPublic(mustAddr(t, "0.0.0.0")) {
		t.Error("unspecified should not be public")
	}
	if IsPublic(mustAddr(t, "224.0.0.1")) {
		t.Error("multicast should not be public")
	}
	if IsPublic(netip.Addr{}) {
		t.Error("invalid should not be public")
	}
}

func TestPrivatePublicDisjoint(t *testing.T) {
	// No valid unicast address may be both private and public.
	f := func(b [4]byte) bool {
		a := netip.AddrFrom4(b)
		return !(IsPrivate(a) && IsPublic(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseAddrUnmaps(t *testing.T) {
	a, err := ParseAddr("::ffff:192.168.0.1")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Is4() {
		t.Fatalf("expected unmapped IPv4, got %v", a)
	}
	if !IsRFC1918(a) {
		t.Fatal("unmapped 192.168.0.1 should be RFC1918")
	}
	if _, err := ParseAddr("not-an-ip"); err == nil {
		t.Fatal("want parse error")
	}
}

func TestAddrBit(t *testing.T) {
	a := mustAddr(t, "128.0.0.1")
	if AddrBit(a, 0) != 1 {
		t.Error("bit 0 of 128.0.0.1 should be 1")
	}
	if AddrBit(a, 1) != 0 {
		t.Error("bit 1 of 128.0.0.1 should be 0")
	}
	if AddrBit(a, 31) != 1 {
		t.Error("bit 31 of 128.0.0.1 should be 1")
	}
	v6 := mustAddr(t, "8000::")
	if AddrBit(v6, 0) != 1 || AddrBit(v6, 1) != 0 {
		t.Error("v6 bit extraction wrong")
	}
}

func TestAddrBitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for out-of-range bit")
		}
	}()
	AddrBit(mustAddr(t, "1.2.3.4"), 32)
}

func TestHostAt(t *testing.T) {
	p := netip.MustParsePrefix("192.0.2.0/24")
	a, err := HostAt(p, 0)
	if err != nil || a.String() != "192.0.2.0" {
		t.Fatalf("HostAt 0 = %v, %v", a, err)
	}
	a, err = HostAt(p, 255)
	if err != nil || a.String() != "192.0.2.255" {
		t.Fatalf("HostAt 255 = %v, %v", a, err)
	}
	if _, err = HostAt(p, 256); err == nil {
		t.Fatal("want error for host index beyond /24")
	}
}

func TestHostAtV6(t *testing.T) {
	p := netip.MustParsePrefix("2001:db8::/64")
	a, err := HostAt(p, 1)
	if err != nil || a.String() != "2001:db8::1" {
		t.Fatalf("HostAt = %v, %v", a, err)
	}
	a, err = HostAt(p, 0x10000)
	if err != nil || a.String() != "2001:db8::1:0" {
		t.Fatalf("HostAt = %v, %v", a, err)
	}
}

func TestHostAtCrossesOctets(t *testing.T) {
	p := netip.MustParsePrefix("10.0.0.0/8")
	a, err := HostAt(p, 65536)
	if err != nil || a.String() != "10.1.0.0" {
		t.Fatalf("HostAt = %v, %v", a, err)
	}
}

func TestTrieBasicLookup(t *testing.T) {
	var tr Trie[int]
	if err := tr.Insert(netip.MustParsePrefix("10.0.0.0/8"), 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(netip.MustParsePrefix("10.1.0.0/16"), 2); err != nil {
		t.Fatal(err)
	}
	v, err := tr.Lookup(mustAddr(t, "10.1.2.3"))
	if err != nil || v != 2 {
		t.Fatalf("lookup = %v, %v; want 2 (longest match)", v, err)
	}
	v, err = tr.Lookup(mustAddr(t, "10.2.0.1"))
	if err != nil || v != 1 {
		t.Fatalf("lookup = %v, %v; want 1", v, err)
	}
	if _, err := tr.Lookup(mustAddr(t, "11.0.0.1")); err != ErrNoMatch {
		t.Fatalf("err = %v, want ErrNoMatch", err)
	}
}

func TestTrieLookupPrefix(t *testing.T) {
	var tr Trie[string]
	tr.Insert(netip.MustParsePrefix("192.0.2.0/24"), "doc")
	p, v, err := tr.LookupPrefix(mustAddr(t, "192.0.2.55"))
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "192.0.2.0/24" || v != "doc" {
		t.Fatalf("got %v %q", p, v)
	}
	if _, _, err := tr.LookupPrefix(mustAddr(t, "198.51.100.1")); err != ErrNoMatch {
		t.Fatalf("err = %v", err)
	}
}

func TestTrieDefaultRoute(t *testing.T) {
	var tr Trie[int]
	tr.Insert(netip.MustParsePrefix("0.0.0.0/0"), 99)
	tr.Insert(netip.MustParsePrefix("10.0.0.0/8"), 1)
	v, err := tr.Lookup(mustAddr(t, "8.8.8.8"))
	if err != nil || v != 99 {
		t.Fatalf("default route lookup = %v, %v", v, err)
	}
	v, err = tr.Lookup(mustAddr(t, "10.0.0.1"))
	if err != nil || v != 1 {
		t.Fatalf("more-specific lookup = %v, %v", v, err)
	}
}

func TestTrieFamiliesAreSeparate(t *testing.T) {
	var tr Trie[int]
	tr.Insert(netip.MustParsePrefix("::/0"), 6)
	if _, err := tr.Lookup(mustAddr(t, "1.2.3.4")); err != ErrNoMatch {
		t.Fatal("v6 default route must not match v4 address")
	}
	v, err := tr.Lookup(mustAddr(t, "2001:db8::1"))
	if err != nil || v != 6 {
		t.Fatalf("v6 lookup = %v, %v", v, err)
	}
}

func TestTrieReplaceValue(t *testing.T) {
	var tr Trie[int]
	p := netip.MustParsePrefix("10.0.0.0/8")
	tr.Insert(p, 1)
	tr.Insert(p, 2)
	if tr.Len() != 1 {
		t.Fatalf("len = %d, want 1", tr.Len())
	}
	v, _ := tr.Lookup(mustAddr(t, "10.0.0.1"))
	if v != 2 {
		t.Fatalf("value = %d, want 2", v)
	}
}

func TestTrieInvalidInputs(t *testing.T) {
	var tr Trie[int]
	if err := tr.Insert(netip.Prefix{}, 1); err == nil {
		t.Fatal("want error for invalid prefix")
	}
	if _, err := tr.Lookup(netip.Addr{}); err == nil {
		t.Fatal("want error for invalid address")
	}
}

func TestTrieHostRoute(t *testing.T) {
	var tr Trie[int]
	tr.Insert(netip.MustParsePrefix("203.0.113.7/32"), 7)
	v, err := tr.Lookup(mustAddr(t, "203.0.113.7"))
	if err != nil || v != 7 {
		t.Fatalf("host route lookup = %v, %v", v, err)
	}
	if _, err := tr.Lookup(mustAddr(t, "203.0.113.8")); err != ErrNoMatch {
		t.Fatal("adjacent address must not match /32")
	}
}

func TestTrieWalk(t *testing.T) {
	var tr Trie[int]
	prefixes := []string{"10.0.0.0/8", "10.1.0.0/16", "192.168.0.0/16", "2001:db8::/32"}
	for i, s := range prefixes {
		tr.Insert(netip.MustParsePrefix(s), i)
	}
	seen := map[string]int{}
	tr.Walk(func(p netip.Prefix, v int) bool {
		seen[p.String()] = v
		return true
	})
	if len(seen) != len(prefixes) {
		t.Fatalf("walked %d prefixes, want %d: %v", len(seen), len(prefixes), seen)
	}
	for i, s := range prefixes {
		if seen[s] != i {
			t.Fatalf("prefix %s = %d, want %d", s, seen[s], i)
		}
	}
}

func TestTrieWalkEarlyStop(t *testing.T) {
	var tr Trie[int]
	tr.Insert(netip.MustParsePrefix("10.0.0.0/8"), 0)
	tr.Insert(netip.MustParsePrefix("11.0.0.0/8"), 1)
	count := 0
	tr.Walk(func(netip.Prefix, int) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("visited %d, want 1", count)
	}
}

func TestTrieLongestMatchProperty(t *testing.T) {
	// Against a set of random prefixes, trie lookup must agree with a
	// brute-force longest-match scan.
	rng := rand.New(rand.NewSource(20))
	var tr Trie[int]
	type entry struct {
		p netip.Prefix
		v int
	}
	var entries []entry
	for i := 0; i < 200; i++ {
		var b [4]byte
		rng.Read(b[:])
		bits := rng.Intn(25) + 8
		p, err := netip.AddrFrom4(b).Prefix(bits)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, entry{p, i})
		tr.Insert(p, i)
	}
	for trial := 0; trial < 500; trial++ {
		var b [4]byte
		rng.Read(b[:])
		addr := netip.AddrFrom4(b)
		bestLen, bestV := -1, 0
		for _, e := range entries {
			if e.p.Contains(addr) && e.p.Bits() >= bestLen {
				// Later entries replace earlier equal-length ones,
				// matching Insert's replace semantics.
				bestLen, bestV = e.p.Bits(), e.v
			}
		}
		v, err := tr.Lookup(addr)
		if bestLen < 0 {
			if err != ErrNoMatch {
				t.Fatalf("addr %v: err = %v, want ErrNoMatch", addr, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("addr %v: %v", addr, err)
		}
		if v != bestV {
			t.Fatalf("addr %v: got %d, want %d", addr, v, bestV)
		}
	}
}

func TestPrefixSet(t *testing.T) {
	var s PrefixSet
	if err := s.AddString("1.66.0.0/16"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddString("110.163.0.0/16"); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(mustAddr(t, "1.66.12.34")) {
		t.Fatal("expected member")
	}
	if s.Contains(mustAddr(t, "9.9.9.9")) {
		t.Fatal("unexpected member")
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if err := s.AddString("garbage"); err == nil {
		t.Fatal("want parse error")
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(30))
	var tr Trie[int]
	for i := 0; i < 100000; i++ {
		var buf [4]byte
		rng.Read(buf[:])
		bits := rng.Intn(17) + 8
		p, _ := netip.AddrFrom4(buf).Prefix(bits)
		tr.Insert(p, i)
	}
	addrs := make([]netip.Addr, 1024)
	for i := range addrs {
		var buf [4]byte
		rng.Read(buf[:])
		addrs[i] = netip.AddrFrom4(buf)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(addrs[i%len(addrs)]) //nolint:errcheck // miss is fine
	}
}
