package ipnet

import (
	"errors"
	"net/netip"
)

// Trie is a binary radix trie mapping IP prefixes to values, supporting
// longest-prefix match. It stores IPv4 and IPv6 prefixes in separate roots
// so families never shadow one another. The zero value is an empty trie
// ready for use. Trie is not safe for concurrent mutation; concurrent
// lookups without writers are safe.
type Trie[V any] struct {
	v4, v6 *trieNode[V]
	size   int
}

type trieNode[V any] struct {
	children [2]*trieNode[V]
	value    V
	hasValue bool
}

// ErrNoMatch is returned by Lookup when no inserted prefix contains the
// address.
var ErrNoMatch = errors.New("ipnet: no matching prefix")

// Insert adds prefix with the given value, replacing any value previously
// stored at exactly that prefix. It returns an error for invalid prefixes.
func (t *Trie[V]) Insert(prefix netip.Prefix, value V) error {
	if !prefix.IsValid() {
		return errors.New("ipnet: invalid prefix")
	}
	prefix = prefix.Masked()
	root := &t.v6
	if prefix.Addr().Is4() {
		root = &t.v4
	}
	if *root == nil {
		*root = &trieNode[V]{}
	}
	node := *root
	addr := prefix.Addr()
	for i := 0; i < prefix.Bits(); i++ {
		b := AddrBit(addr, i)
		if node.children[b] == nil {
			node.children[b] = &trieNode[V]{}
		}
		node = node.children[b]
	}
	if !node.hasValue {
		t.size++
	}
	node.value = value
	node.hasValue = true
	return nil
}

// Lookup returns the value of the longest inserted prefix containing addr.
func (t *Trie[V]) Lookup(addr netip.Addr) (V, error) {
	var zero V
	if !addr.IsValid() {
		return zero, errors.New("ipnet: invalid address")
	}
	addr = addr.Unmap()
	node := t.v6
	if addr.Is4() {
		node = t.v4
	}
	var best V
	found := false
	for i := 0; node != nil; i++ {
		if node.hasValue {
			best = node.value
			found = true
		}
		if i >= addr.BitLen() {
			break
		}
		node = node.children[AddrBit(addr, i)]
	}
	if !found {
		return zero, ErrNoMatch
	}
	return best, nil
}

// LookupPrefix returns both the longest matching prefix and its value.
func (t *Trie[V]) LookupPrefix(addr netip.Addr) (netip.Prefix, V, error) {
	var zero V
	if !addr.IsValid() {
		return netip.Prefix{}, zero, errors.New("ipnet: invalid address")
	}
	addr = addr.Unmap()
	node := t.v6
	if addr.Is4() {
		node = t.v4
	}
	var best V
	bestLen := -1
	for i := 0; node != nil; i++ {
		if node.hasValue {
			best = node.value
			bestLen = i
		}
		if i >= addr.BitLen() {
			break
		}
		node = node.children[AddrBit(addr, i)]
	}
	if bestLen < 0 {
		return netip.Prefix{}, zero, ErrNoMatch
	}
	p, err := addr.Prefix(bestLen)
	if err != nil {
		return netip.Prefix{}, zero, err
	}
	return p, best, nil
}

// Contains reports whether any inserted prefix contains addr.
func (t *Trie[V]) Contains(addr netip.Addr) bool {
	_, err := t.Lookup(addr)
	return err == nil
}

// Len returns the number of distinct prefixes stored.
func (t *Trie[V]) Len() int { return t.size }

// Walk visits every stored (prefix, value) pair in depth-first order. The
// visit function returns false to stop early. Walk reconstructs prefixes
// from trie paths, so it allocates; it is intended for dumps and tests, not
// hot paths.
func (t *Trie[V]) Walk(visit func(netip.Prefix, V) bool) {
	var walk func(node *trieNode[V], bits []byte, isV4 bool) bool
	walk = func(node *trieNode[V], bits []byte, isV4 bool) bool {
		if node == nil {
			return true
		}
		if node.hasValue {
			p := prefixFromBits(bits, isV4)
			if !visit(p, node.value) {
				return false
			}
		}
		for b := 0; b < 2; b++ {
			if !walk(node.children[b], append(bits, byte(b)), isV4) {
				return false
			}
		}
		return true
	}
	if !walk(t.v4, nil, true) {
		return
	}
	walk(t.v6, nil, false)
}

func prefixFromBits(bits []byte, isV4 bool) netip.Prefix {
	if isV4 {
		var b [4]byte
		for i, bit := range bits {
			if bit == 1 {
				b[i/8] |= 1 << (7 - i%8)
			}
		}
		return netip.PrefixFrom(netip.AddrFrom4(b), len(bits))
	}
	var b [16]byte
	for i, bit := range bits {
		if bit == 1 {
			b[i/8] |= 1 << (7 - i%8)
		}
	}
	return netip.PrefixFrom(netip.AddrFrom16(b), len(bits))
}

// PrefixSet is a set of prefixes with membership testing by
// longest-prefix match. The CDN pipeline uses it to drop mobile prefixes.
// The zero value is an empty set ready for use.
type PrefixSet struct {
	trie Trie[struct{}]
}

// Add inserts a prefix into the set.
func (s *PrefixSet) Add(prefix netip.Prefix) error {
	return s.trie.Insert(prefix, struct{}{})
}

// AddString parses and inserts a prefix in CIDR notation.
func (s *PrefixSet) AddString(cidr string) error {
	p, err := netip.ParsePrefix(cidr)
	if err != nil {
		return err
	}
	return s.Add(p)
}

// Contains reports whether addr is covered by any prefix in the set.
func (s *PrefixSet) Contains(addr netip.Addr) bool {
	return s.trie.Contains(addr)
}

// Len returns the number of prefixes in the set.
func (s *PrefixSet) Len() int { return s.trie.Len() }
