package apnic

import (
	"bytes"
	"strings"
	"testing"

	"github.com/last-mile-congestion/lastmile/internal/bgp"
)

func testEstimates() []Estimate {
	return []Estimate{
		{ASN: 100, CC: "JP", Users: 5_000_000},
		{ASN: 200, CC: "US", Users: 20_000_000},
		{ASN: 300, CC: "DE", Users: 1_000_000},
		{ASN: 400, CC: "JP", Users: 8_000_000},
	}
}

func TestRankOrder(t *testing.T) {
	r, err := NewRanking(testEstimates())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		asn  bgp.ASN
		rank int
	}{
		{200, 1}, {400, 2}, {100, 3}, {300, 4},
	}
	for _, c := range cases {
		got, ok := r.Rank(c.asn)
		if !ok || got != c.rank {
			t.Errorf("Rank(%v) = %d, %v; want %d", c.asn, got, ok, c.rank)
		}
	}
	if _, ok := r.Rank(999); ok {
		t.Error("unknown ASN should not be ranked")
	}
}

func TestRankTieBreak(t *testing.T) {
	r, err := NewRanking([]Estimate{
		{ASN: 7, CC: "JP", Users: 100},
		{ASN: 3, CC: "JP", Users: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Equal users: lower ASN ranks first, deterministically.
	r3, _ := r.Rank(3)
	r7, _ := r.Rank(7)
	if r3 != 1 || r7 != 2 {
		t.Fatalf("ranks = %d, %d", r3, r7)
	}
}

func TestUsersAndCountry(t *testing.T) {
	r, _ := NewRanking(testEstimates())
	u, ok := r.Users(400)
	if !ok || u != 8_000_000 {
		t.Fatalf("users = %d, %v", u, ok)
	}
	cc, ok := r.Country(300)
	if !ok || cc != "DE" {
		t.Fatalf("cc = %q, %v", cc, ok)
	}
	if _, ok := r.Users(999); ok {
		t.Fatal("unknown ASN")
	}
	if _, ok := r.Country(999); ok {
		t.Fatal("unknown ASN")
	}
}

func TestDuplicateASN(t *testing.T) {
	if _, err := NewRanking([]Estimate{{ASN: 1, Users: 5}, {ASN: 1, Users: 9}}); err == nil {
		t.Fatal("want error for duplicate ASN")
	}
}

func TestTop(t *testing.T) {
	r, _ := NewRanking(testEstimates())
	top := r.Top(2)
	if len(top) != 2 || top[0].ASN != 200 || top[1].ASN != 400 {
		t.Fatalf("top = %+v", top)
	}
	if len(r.Top(100)) != 4 {
		t.Fatal("Top should clamp to length")
	}
}

func TestTopByCountry(t *testing.T) {
	r, _ := NewRanking(testEstimates())
	jp := r.TopByCountry("JP", 10)
	if len(jp) != 2 || jp[0].ASN != 400 || jp[1].ASN != 100 {
		t.Fatalf("jp = %+v", jp)
	}
	if got := r.TopByCountry("JP", 1); len(got) != 1 {
		t.Fatalf("limited = %+v", got)
	}
	if got := r.TopByCountry("FR", 5); len(got) != 0 {
		t.Fatalf("unknown country = %+v", got)
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		rank int
		want RankBucket
	}{
		{1, Bucket1to10}, {10, Bucket1to10},
		{11, Bucket11to100}, {100, Bucket11to100},
		{101, Bucket101to1k}, {1000, Bucket101to1k},
		{1001, Bucket1kto10k}, {10000, Bucket1kto10k},
		{10001, BucketOver10k}, {0, BucketOver10k}, {-5, BucketOver10k},
	}
	for _, c := range cases {
		if got := BucketOf(c.rank); got != c.want {
			t.Errorf("BucketOf(%d) = %v, want %v", c.rank, got, c.want)
		}
	}
}

func TestBucketString(t *testing.T) {
	want := []string{"1 to 10", "11 to 100", "101 to 1k", "1k to 10k", "more than 10k"}
	for b := Bucket1to10; b < NumBuckets; b++ {
		if b.String() != want[b] {
			t.Errorf("bucket %d = %q, want %q", b, b.String(), want[b])
		}
	}
	if RankBucket(99).String() != "unknown" {
		t.Error("out-of-range bucket should be unknown")
	}
}

func TestRankingRoundTrip(t *testing.T) {
	r, _ := NewRanking(testEstimates())
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseRanking(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != 4 {
		t.Fatalf("len = %d", parsed.Len())
	}
	rank, _ := parsed.Rank(200)
	if rank != 1 {
		t.Fatalf("rank = %d", rank)
	}
}

func TestParseRankingErrors(t *testing.T) {
	cases := []string{
		"",                 // empty
		"1 JP",             // missing users
		"x JP 100",         // bad asn
		"1 JP many",        // bad users
		"1 JP -5",          // negative users
		"1 JP 100 extra f", // too many fields
	}
	for _, input := range cases {
		if _, err := ParseRanking(strings.NewReader(input)); err == nil {
			t.Errorf("input %q: want error", input)
		}
	}
}

func TestParseRankingComments(t *testing.T) {
	input := "# eyeballs\n\nAS100 JP 500\n200 US 900\n"
	r, err := ParseRanking(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
}
