// Package apnic models the APNIC "Visible ASNs: Customer Populations"
// eyeball estimates the paper uses to put its classification results in
// perspective (Fig. 4): per-AS estimated user populations, a global rank,
// the paper's five rank buckets, and country codes for the geographical
// breakdown.
package apnic

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/last-mile-congestion/lastmile/internal/bgp"
)

// Estimate is one AS's eyeball population estimate.
type Estimate struct {
	ASN bgp.ASN
	// CC is the ISO 3166-1 alpha-2 country code the AS is attributed to.
	CC string
	// Users is the estimated number of Internet users behind the AS.
	Users int64
}

// Ranking is an ordered set of eyeball estimates. Ranks are 1-based and
// assigned by descending user count.
type Ranking struct {
	byASN  map[bgp.ASN]int // index into sorted
	sorted []Estimate
}

// NewRanking builds a ranking from estimates. Duplicate ASNs are an
// error.
func NewRanking(estimates []Estimate) (*Ranking, error) {
	sorted := make([]Estimate, len(estimates))
	copy(sorted, estimates)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Users != sorted[j].Users {
			return sorted[i].Users > sorted[j].Users
		}
		return sorted[i].ASN < sorted[j].ASN
	})
	byASN := make(map[bgp.ASN]int, len(sorted))
	for i, e := range sorted {
		if _, dup := byASN[e.ASN]; dup {
			return nil, fmt.Errorf("apnic: duplicate estimate for %v", e.ASN)
		}
		byASN[e.ASN] = i
	}
	return &Ranking{byASN: byASN, sorted: sorted}, nil
}

// Rank returns the 1-based global rank of asn by user population.
func (r *Ranking) Rank(asn bgp.ASN) (int, bool) {
	i, ok := r.byASN[asn]
	if !ok {
		return 0, false
	}
	return i + 1, true
}

// Users returns the estimated user population of asn.
func (r *Ranking) Users(asn bgp.ASN) (int64, bool) {
	i, ok := r.byASN[asn]
	if !ok {
		return 0, false
	}
	return r.sorted[i].Users, true
}

// Country returns the country code of asn.
func (r *Ranking) Country(asn bgp.ASN) (string, bool) {
	i, ok := r.byASN[asn]
	if !ok {
		return "", false
	}
	return r.sorted[i].CC, true
}

// Len returns the number of ranked ASes.
func (r *Ranking) Len() int { return len(r.sorted) }

// Top returns the n highest-ranked estimates (fewer if the ranking is
// smaller).
func (r *Ranking) Top(n int) []Estimate {
	if n > len(r.sorted) {
		n = len(r.sorted)
	}
	out := make([]Estimate, n)
	copy(out, r.sorted[:n])
	return out
}

// TopByCountry returns the n highest-ranked estimates attributed to cc.
func (r *Ranking) TopByCountry(cc string, n int) []Estimate {
	var out []Estimate
	for _, e := range r.sorted {
		if e.CC == cc {
			out = append(out, e)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

// RankBucket is one of the paper's Fig. 4 x-axis buckets.
type RankBucket int

// The five buckets of Fig. 4.
const (
	Bucket1to10 RankBucket = iota
	Bucket11to100
	Bucket101to1k
	Bucket1kto10k
	BucketOver10k
	// NumBuckets is the bucket count, for sizing arrays indexed by
	// RankBucket.
	NumBuckets
)

// BucketOf maps a 1-based rank to its bucket. Ranks < 1 are treated as
// unranked and fall in the last bucket.
func BucketOf(rank int) RankBucket {
	switch {
	case rank >= 1 && rank <= 10:
		return Bucket1to10
	case rank >= 11 && rank <= 100:
		return Bucket11to100
	case rank >= 101 && rank <= 1000:
		return Bucket101to1k
	case rank >= 1001 && rank <= 10000:
		return Bucket1kto10k
	default:
		return BucketOver10k
	}
}

// String returns the Fig. 4 axis label of the bucket.
func (b RankBucket) String() string {
	switch b {
	case Bucket1to10:
		return "1 to 10"
	case Bucket11to100:
		return "11 to 100"
	case Bucket101to1k:
		return "101 to 1k"
	case Bucket1kto10k:
		return "1k to 10k"
	case BucketOver10k:
		return "more than 10k"
	default:
		return "unknown"
	}
}

// WriteTo writes the ranking as "asn cc users" lines in rank order.
func (r *Ranking) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, e := range r.sorted {
		n, err := fmt.Fprintf(w, "%d %s %d\n", uint32(e.ASN), e.CC, e.Users)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ParseRanking reads "asn cc users" lines (comments with '#' and blank
// lines skipped) and builds a Ranking.
func ParseRanking(r io.Reader) (*Ranking, error) {
	var estimates []Estimate
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("apnic: line %d: want 'asn cc users'", lineNo)
		}
		asn, err := strconv.ParseUint(strings.TrimPrefix(fields[0], "AS"), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("apnic: line %d: bad asn %q", lineNo, fields[0])
		}
		users, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil || users < 0 {
			return nil, fmt.Errorf("apnic: line %d: bad user count %q", lineNo, fields[2])
		}
		estimates = append(estimates, Estimate{ASN: bgp.ASN(asn), CC: fields[1], Users: users})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(estimates) == 0 {
		return nil, errors.New("apnic: empty ranking")
	}
	return NewRanking(estimates)
}
