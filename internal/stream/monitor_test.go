package stream

import (
	"math"
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/bgp"
	"github.com/last-mile-congestion/lastmile/internal/core"
	"github.com/last-mile-congestion/lastmile/internal/traceroute"
)

var t0 = time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)

// mkTrace builds a 2-hop traceroute with the given last-mile delta.
func mkTrace(probeID int, ts time.Time, deltaMs float64) *traceroute.Result {
	priv := netip.MustParseAddr("192.168.1.1")
	pub := netip.MustParseAddr("203.0.113.1")
	r := &traceroute.Result{
		ProbeID: probeID, MsmID: 5004, Timestamp: ts, AF: 4,
		SrcAddr: netip.MustParseAddr("192.168.1.10"),
		DstAddr: netip.MustParseAddr("198.41.0.4"),
	}
	h1 := traceroute.HopResult{Hop: 1}
	h2 := traceroute.HopResult{Hop: 2}
	for i := 0; i < 3; i++ {
		h1.Replies = append(h1.Replies, traceroute.Reply{From: priv, RTT: 0.5, TTL: 64})
		h2.Replies = append(h2.Replies, traceroute.Reply{From: pub, RTT: 0.5 + deltaMs, TTL: 254})
	}
	r.Hops = []traceroute.HopResult{h1, h2}
	return r
}

// feedDiurnal streams days of traceroutes for nProbes with a 6-hour
// daily bump of bumpMs.
func feedDiurnal(t *testing.T, m *Monitor, asn bgp.ASN, nProbes, days int, bumpMs float64) {
	t.Helper()
	end := t0.AddDate(0, 0, days)
	for ts := t0; ts.Before(end); ts = ts.Add(10 * time.Minute) {
		delta := 2.0
		if h := ts.Hour(); h >= 12 && h < 18 {
			delta += bumpMs
		}
		for p := 1; p <= nProbes; p++ {
			if err := m.Observe(asn, mkTrace(p, ts, delta)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestMonitorDetectsCongestion(t *testing.T) {
	m := NewMonitor(Options{Window: 10 * 24 * time.Hour})
	feedDiurnal(t, m, 64500, 4, 10, 5)
	v, err := m.ClassifyAS(64500)
	if err != nil {
		t.Fatal(err)
	}
	if v.Class != core.Severe {
		t.Fatalf("class = %v (amp %.2f), want Severe", v.Class, v.DailyAmplitude)
	}
	if v.Probes != 4 {
		t.Fatalf("probes = %d", v.Probes)
	}
	if !v.IsDaily {
		t.Fatal("peak should be daily")
	}
	st := m.Stats()
	if st.Ingested == 0 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Live gauges must reflect the resident window.
	if st.ASes != 1 || st.Probes != 4 || st.Bins == 0 || st.Samples == 0 {
		t.Fatalf("gauges = %+v", st)
	}
}

func TestMonitorFlatASIsNone(t *testing.T) {
	m := NewMonitor(Options{Window: 10 * 24 * time.Hour})
	feedDiurnal(t, m, 64501, 3, 10, 0)
	v, err := m.ClassifyAS(64501)
	if err != nil {
		t.Fatal(err)
	}
	if v.Class != core.None {
		t.Fatalf("class = %v, want None", v.Class)
	}
}

func TestMonitorEvictsOldState(t *testing.T) {
	m := NewMonitor(Options{Window: 5 * 24 * time.Hour, MaxLateness: time.Hour})
	// Congested days 0-5, then clean days 5-12: after the window slides
	// past the congestion, the verdict must flip to None.
	end1 := t0.AddDate(0, 0, 5)
	for ts := t0; ts.Before(end1); ts = ts.Add(10 * time.Minute) {
		delta := 2.0
		if h := ts.Hour(); h >= 12 && h < 18 {
			delta += 5
		}
		for p := 1; p <= 3; p++ {
			m.Observe(64500, mkTrace(p, ts, delta))
		}
	}
	v, err := m.ClassifyAS(64500)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Class.Reported() {
		t.Fatalf("congested window class = %v", v.Class)
	}

	end2 := t0.AddDate(0, 0, 12)
	for ts := end1; ts.Before(end2); ts = ts.Add(10 * time.Minute) {
		for p := 1; p <= 3; p++ {
			m.Observe(64500, mkTrace(p, ts, 2.0))
		}
	}
	v, err = m.ClassifyAS(64500)
	if err != nil {
		t.Fatal(err)
	}
	if v.Class != core.None {
		t.Fatalf("clean window class = %v (amp %.2f), want None", v.Class, v.DailyAmplitude)
	}
}

func TestMonitorDropsTooLate(t *testing.T) {
	m := NewMonitor(Options{Window: 2 * 24 * time.Hour, MaxLateness: time.Hour})
	m.Observe(1, mkTrace(1, t0.AddDate(0, 0, 10), 2))
	// A result 10 days behind the newest observation must be dropped.
	m.Observe(1, mkTrace(1, t0, 2))
	if st := m.Stats(); st.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", st.Dropped)
	}
}

func TestMonitorIgnoresUnusableTraceroutes(t *testing.T) {
	m := NewMonitor(Options{})
	r := mkTrace(1, t0, 2)
	r.Hops = r.Hops[:1] // no public hop
	if err := m.Observe(1, r); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Ingested != 0 {
		t.Fatalf("ingested = %d, want 0", st.Ingested)
	}
	if err := m.Observe(1, nil); err == nil {
		t.Fatal("nil result must error")
	}
}

func TestMonitorMinTraceroutesFilter(t *testing.T) {
	// A probe contributing a single traceroute per bin never yields a
	// usable series under the default filter.
	m := NewMonitor(Options{Window: 8 * 24 * time.Hour})
	end := t0.AddDate(0, 0, 8)
	for ts := t0; ts.Before(end); ts = ts.Add(30 * time.Minute) {
		m.Observe(64500, mkTrace(1, ts, 2))
	}
	if _, err := m.ClassifyAS(64500); err == nil {
		t.Fatal("1 traceroute/bin should not classify under min=3")
	}
}

func TestMonitorUnknownAS(t *testing.T) {
	m := NewMonitor(Options{})
	if _, err := m.ClassifyAS(999); err == nil {
		t.Fatal("want error for unknown AS")
	}
}

func TestMonitorClassifyAll(t *testing.T) {
	m := NewMonitor(Options{Window: 8 * 24 * time.Hour})
	feedDiurnal(t, m, 100, 3, 8, 5)
	feedDiurnal(t, m, 200, 3, 8, 0)
	// AS 300 never clears the min-traceroutes bar: it must surface in
	// the skipped list with a reason instead of silently vanishing.
	for ts := t0; ts.Before(t0.AddDate(0, 0, 8)); ts = ts.Add(30 * time.Minute) {
		if err := m.Observe(300, mkTrace(7, ts, 2)); err != nil {
			t.Fatal(err)
		}
	}
	asns := m.ASNs()
	if len(asns) != 3 || asns[0] != 100 || asns[1] != 200 || asns[2] != 300 {
		t.Fatalf("asns = %v", asns)
	}
	verdicts, skipped := m.ClassifyAll()
	if len(verdicts) != 2 {
		t.Fatalf("verdicts = %d", len(verdicts))
	}
	if !verdicts[0].Class.Reported() || verdicts[1].Class.Reported() {
		t.Fatalf("classes = %v / %v", verdicts[0].Class, verdicts[1].Class)
	}
	// Signals cover the window with real data.
	if verdicts[0].Signal.GapCount() > verdicts[0].Signal.Len()/2 {
		t.Fatal("signal mostly gaps")
	}
	if len(skipped) != 1 || skipped[0].ASN != 300 || skipped[0].Reason == nil {
		t.Fatalf("skipped = %+v", skipped)
	}
}

func TestMonitorConcurrentObserve(t *testing.T) {
	m := NewMonitor(Options{Window: 3 * 24 * time.Hour})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				ts := t0.Add(time.Duration(i) * 5 * time.Minute)
				m.Observe(bgp.ASN(100+g), mkTrace(g, ts, 2))
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if st := m.Stats(); st.Ingested != 2000 {
		t.Fatalf("ingested = %d, want 2000", st.Ingested)
	}
}

func TestVerdictAmplitudeSane(t *testing.T) {
	m := NewMonitor(Options{Window: 10 * 24 * time.Hour})
	feedDiurnal(t, m, 64500, 3, 10, 4)
	v, err := m.ClassifyAS(64500)
	if err != nil {
		t.Fatal(err)
	}
	// A 6h/day 4 ms square bump has daily fundamental p2p ≈ 3.6 ms.
	if math.Abs(v.DailyAmplitude-3.6) > 0.8 {
		t.Fatalf("amplitude = %.2f, want ~3.6", v.DailyAmplitude)
	}
}

// TestMonitorConcurrentReadersAndWriters drives writers and every read
// path at once — Observe against ClassifyAS, ClassifyAll, ASNs, and
// Stats — so `go test -race` exercises the monitor's full locking
// discipline, not just concurrent ingestion.
func TestMonitorConcurrentReadersAndWriters(t *testing.T) {
	m := NewMonitor(Options{Window: 3 * 24 * time.Hour})
	// Seed enough state that classification does real work while
	// writers keep mutating the window.
	feedDiurnal(t, m, 64500, 2, 3, 5)

	const writers, readers, perGoroutine = 4, 4, 300
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perGoroutine; i++ {
				ts := t0.AddDate(0, 0, 3).Add(time.Duration(i) * time.Minute)
				if err := m.Observe(bgp.ASN(64500+g%2), mkTrace(10+g, ts, 2)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perGoroutine; i++ {
				switch i % 4 {
				case 0:
					if _, err := m.ClassifyAS(64500); err != nil {
						t.Error(err)
						return
					}
				case 1:
					m.ClassifyAll()
				case 2:
					if asns := m.ASNs(); len(asns) == 0 {
						t.Error("no ASNs while state is live")
						return
					}
				case 3:
					m.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	st := m.Stats()
	if want := int64(writers*perGoroutine + 3*24*6*2); st.Ingested+st.Dropped < want {
		t.Fatalf("ingested+dropped = %d, want >= %d", st.Ingested+st.Dropped, want)
	}
}
