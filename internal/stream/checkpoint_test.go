package stream

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/engine"
)

func TestCheckpointerBinBoundaryGating(t *testing.T) {
	m := NewMonitor(Options{Window: 24 * time.Hour})
	path := filepath.Join(t.TempDir(), "state.lmw")
	c := NewCheckpointer(m, path)

	// Nothing observed: neither path writes a file.
	if wrote, err := c.MaybeCheckpoint(); err != nil || wrote {
		t.Fatalf("MaybeCheckpoint on empty monitor = %v, %v", wrote, err)
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("checkpoint of an empty monitor wrote a state file")
	}

	// First observation crosses into the first bin: one checkpoint.
	if err := m.Observe(64500, mkTrace(1, t0, 2)); err != nil {
		t.Fatal(err)
	}
	if wrote, err := c.MaybeCheckpoint(); err != nil || !wrote {
		t.Fatalf("first MaybeCheckpoint = %v, %v, want a write", wrote, err)
	}
	// More observations inside the same bin: gated off.
	for i := 1; i <= 3; i++ {
		if err := m.Observe(64500, mkTrace(1, t0.Add(time.Duration(i)*time.Minute), 2)); err != nil {
			t.Fatal(err)
		}
		if wrote, err := c.MaybeCheckpoint(); err != nil || wrote {
			t.Fatalf("same-bin MaybeCheckpoint = %v, %v, want no write", wrote, err)
		}
	}
	// Crossing the 30-minute bin boundary re-arms the gate.
	if err := m.Observe(64500, mkTrace(1, t0.Add(31*time.Minute), 2)); err != nil {
		t.Fatal(err)
	}
	if wrote, err := c.MaybeCheckpoint(); err != nil || !wrote {
		t.Fatalf("next-bin MaybeCheckpoint = %v, %v, want a write", wrote, err)
	}
}

// TestCheckpointRestoreRoundTrip pins the full file cycle: checkpoint
// to disk, restore a monitor from the file, and verify it carries the
// snapshotting monitor's exact state — then that a later checkpoint
// atomically replaces the file rather than appending.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	m := NewMonitor(Options{Window: 6 * 24 * time.Hour})
	feedDiurnal(t, m, 64500, 3, 3, 5)
	path := filepath.Join(t.TempDir(), "state.lmw")
	c := NewCheckpointer(m, path)
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	firstSize, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreMonitor(f, Options{})
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if a, b := restored.Stats(), m.Stats(); a != b {
		t.Fatalf("restored stats %+v, want %+v", a, b)
	}
	va, err := restored.ClassifyAS(64500)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := m.ClassifyAS(64500)
	if err != nil {
		t.Fatal(err)
	}
	if va.Class != vb.Class || va.Probes != vb.Probes ||
		math.Float64bits(va.DailyAmplitude) != math.Float64bits(vb.DailyAmplitude) {
		t.Fatalf("restored verdict {%v,%d,%v} vs {%v,%d,%v}",
			va.Class, va.Probes, va.DailyAmplitude, vb.Class, vb.Probes, vb.DailyAmplitude)
	}

	// Grow the window and checkpoint again: the file is replaced
	// whole — a stale-size file would mean append or partial write.
	feedDiurnal(t, m, 64501, 3, 3, 0)
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	secondSize, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if secondSize.Size() <= firstSize.Size() {
		t.Fatalf("second checkpoint (%d bytes) not larger than first (%d)",
			secondSize.Size(), firstSize.Size())
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("state dir holds %d entries, want just the checkpoint", len(entries))
	}
}

// TestRestoreMonitorOptionHandling pins the resume option semantics:
// zero options adopt the snapshot's, conflicting ones fail, and a
// snapshot from an unbounded engine is not a monitor checkpoint.
func TestRestoreMonitorOptionHandling(t *testing.T) {
	m := NewMonitor(Options{Window: 24 * time.Hour, MaxLateness: 2 * time.Hour})
	if err := m.Observe(64500, mkTrace(1, t0, 2)); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := m.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}

	r, err := RestoreMonitor(bytes.NewReader(snap.Bytes()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.eng.Options(); got.Window != 24*time.Hour || got.MaxLateness != 2*time.Hour {
		t.Fatalf("restored engine options %+v", got)
	}
	if _, err := RestoreMonitor(bytes.NewReader(snap.Bytes()), Options{Window: time.Hour}); err == nil {
		t.Fatal("conflicting window must fail")
	}

	// A snapshot of an unbounded (batch) engine cannot seed a windowed
	// monitor: no eviction horizon was ever enforced on its contents.
	unbounded := engine.New(engine.Options{})
	unbounded.Observe(64500, 1, t0, []float64{1, 2, 3})
	var raw bytes.Buffer
	if err := unbounded.Snapshot(&raw); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreMonitor(bytes.NewReader(raw.Bytes()), Options{}); err == nil {
		t.Fatal("unbounded snapshot must be rejected")
	}
}

// checkpointBytes snapshots a small populated monitor: the corpus for
// the corruption matrix below.
func checkpointBytes(t *testing.T) []byte {
	t.Helper()
	m := NewMonitor(Options{Window: 24 * time.Hour})
	for i := 0; i < 3; i++ {
		if err := m.Observe(64500, mkTrace(1, t0.Add(time.Duration(i)*10*time.Minute), 2)); err != nil {
			t.Fatal(err)
		}
	}
	var b bytes.Buffer
	if err := m.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// openCorrupt writes data as a state file and asserts Open's recovery
// contract on it: never a panic, never a hard error, never a silent
// partial restore. Either the file is rejected whole (Warning set, clean
// cold start) or it restores to a structurally valid monitor — the wire
// layer carries no checksum, so a mutation that still decodes
// canonically is indistinguishable from a legitimate checkpoint, and the
// only promise that matters is that the result is safe to run.
func openCorrupt(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open on corrupt file returned hard error (want warning cold start): %v", err)
	}
	if res.Monitor == nil {
		t.Fatal("Open returned nil monitor")
	}
	if res.Warning != nil {
		// Rejected whole: the monitor must be a clean cold start...
		if res.Resumed {
			t.Fatal("Warning set but Resumed true")
		}
		if st := res.Monitor.Stats(); st.Ingested != 0 || st.ASes != 0 || st.Bins != 0 {
			t.Fatalf("cold start after warning carries state: %+v", st)
		}
	}
	// ...and resumed-or-not, the monitor must be usable: observe and
	// classify without panicking.
	if err := res.Monitor.Observe(64501, mkTrace(9, t0.Add(time.Hour), 3)); err != nil {
		t.Fatalf("monitor unusable after corrupt open: %v", err)
	}
	// A sparse AS may legitimately fail classification (too few
	// traceroutes); the assertion here is only that classify runs.
	_, _ = res.Monitor.ClassifyAll()
}

// TestOpenCheckpointCorruptionMatrix sweeps every truncation and every
// single-byte bit flip (0x01, 0x80, 0xff) of a real checkpoint through
// Open. Crash recovery must never be the thing that crashes: each
// variant must cold-start with a warning or restore to a structurally
// valid monitor.
func TestOpenCheckpointCorruptionMatrix(t *testing.T) {
	data := checkpointBytes(t)
	path := filepath.Join(t.TempDir(), "state.lmw")
	for cut := 0; cut < len(data); cut++ {
		openCorrupt(t, path, data[:cut])
	}
	for i := 0; i < len(data); i++ {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			b := append([]byte(nil), data...)
			b[i] ^= flip
			openCorrupt(t, path, b)
		}
	}
}

// TestOpenStateFileContract pins the asymmetric failure contract of
// Open outside the corruption sweep: missing and empty files, garbage,
// a healthy resume, and the one case that must stay a hard error —
// caller options conflicting with the snapshot's.
func TestOpenStateFileContract(t *testing.T) {
	dir := t.TempDir()
	data := checkpointBytes(t)

	// Missing file: silent cold start, no warning.
	res, err := Open(filepath.Join(dir, "absent.lmw"), Options{})
	if err != nil || res.Warning != nil || res.Resumed {
		t.Fatalf("missing file: res %+v, err %v, want silent cold start", res, err)
	}
	// Empty path disables checkpointing entirely.
	res, err = Open("", Options{})
	if err != nil || res.Warning != nil || res.Monitor == nil {
		t.Fatalf("empty path: res %+v, err %v", res, err)
	}

	// Empty and garbage files: warning cold start.
	for name, contents := range map[string][]byte{
		"empty.lmw":   {},
		"garbage.lmw": []byte("not a checkpoint at all"),
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, contents, 0o644); err != nil {
			t.Fatal(err)
		}
		res, err := Open(path, Options{})
		if err != nil || res.Warning == nil || res.Resumed {
			t.Fatalf("%s: res %+v, err %v, want warning cold start", name, res, err)
		}
	}

	// A healthy file resumes, warning-free.
	good := filepath.Join(dir, "good.lmw")
	if err := os.WriteFile(good, data, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err = Open(good, Options{})
	if err != nil || res.Warning != nil || !res.Resumed {
		t.Fatalf("good file: res %+v, err %v, want clean resume", res, err)
	}
	if st := res.Monitor.Stats(); st.Ingested != 3 {
		t.Fatalf("resumed stats %+v, want 3 ingested", st)
	}

	// Conflicting caller options are a misconfiguration, not corruption:
	// Open must fail loudly instead of cold-starting over good state.
	if _, err := Open(good, Options{Window: time.Hour}); err == nil {
		t.Fatal("conflicting options must be a hard error")
	}
}
