package stream

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/engine"
)

func TestCheckpointerBinBoundaryGating(t *testing.T) {
	m := NewMonitor(Options{Window: 24 * time.Hour})
	path := filepath.Join(t.TempDir(), "state.lmw")
	c := NewCheckpointer(m, path)

	// Nothing observed: neither path writes a file.
	if wrote, err := c.MaybeCheckpoint(); err != nil || wrote {
		t.Fatalf("MaybeCheckpoint on empty monitor = %v, %v", wrote, err)
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("checkpoint of an empty monitor wrote a state file")
	}

	// First observation crosses into the first bin: one checkpoint.
	if err := m.Observe(64500, mkTrace(1, t0, 2)); err != nil {
		t.Fatal(err)
	}
	if wrote, err := c.MaybeCheckpoint(); err != nil || !wrote {
		t.Fatalf("first MaybeCheckpoint = %v, %v, want a write", wrote, err)
	}
	// More observations inside the same bin: gated off.
	for i := 1; i <= 3; i++ {
		if err := m.Observe(64500, mkTrace(1, t0.Add(time.Duration(i)*time.Minute), 2)); err != nil {
			t.Fatal(err)
		}
		if wrote, err := c.MaybeCheckpoint(); err != nil || wrote {
			t.Fatalf("same-bin MaybeCheckpoint = %v, %v, want no write", wrote, err)
		}
	}
	// Crossing the 30-minute bin boundary re-arms the gate.
	if err := m.Observe(64500, mkTrace(1, t0.Add(31*time.Minute), 2)); err != nil {
		t.Fatal(err)
	}
	if wrote, err := c.MaybeCheckpoint(); err != nil || !wrote {
		t.Fatalf("next-bin MaybeCheckpoint = %v, %v, want a write", wrote, err)
	}
}

// TestCheckpointRestoreRoundTrip pins the full file cycle: checkpoint
// to disk, restore a monitor from the file, and verify it carries the
// snapshotting monitor's exact state — then that a later checkpoint
// atomically replaces the file rather than appending.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	m := NewMonitor(Options{Window: 6 * 24 * time.Hour})
	feedDiurnal(t, m, 64500, 3, 3, 5)
	path := filepath.Join(t.TempDir(), "state.lmw")
	c := NewCheckpointer(m, path)
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	firstSize, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreMonitor(f, Options{})
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if a, b := restored.Stats(), m.Stats(); a != b {
		t.Fatalf("restored stats %+v, want %+v", a, b)
	}
	va, err := restored.ClassifyAS(64500)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := m.ClassifyAS(64500)
	if err != nil {
		t.Fatal(err)
	}
	if va.Class != vb.Class || va.Probes != vb.Probes ||
		math.Float64bits(va.DailyAmplitude) != math.Float64bits(vb.DailyAmplitude) {
		t.Fatalf("restored verdict {%v,%d,%v} vs {%v,%d,%v}",
			va.Class, va.Probes, va.DailyAmplitude, vb.Class, vb.Probes, vb.DailyAmplitude)
	}

	// Grow the window and checkpoint again: the file is replaced
	// whole — a stale-size file would mean append or partial write.
	feedDiurnal(t, m, 64501, 3, 3, 0)
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	secondSize, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if secondSize.Size() <= firstSize.Size() {
		t.Fatalf("second checkpoint (%d bytes) not larger than first (%d)",
			secondSize.Size(), firstSize.Size())
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("state dir holds %d entries, want just the checkpoint", len(entries))
	}
}

// TestRestoreMonitorOptionHandling pins the resume option semantics:
// zero options adopt the snapshot's, conflicting ones fail, and a
// snapshot from an unbounded engine is not a monitor checkpoint.
func TestRestoreMonitorOptionHandling(t *testing.T) {
	m := NewMonitor(Options{Window: 24 * time.Hour, MaxLateness: 2 * time.Hour})
	if err := m.Observe(64500, mkTrace(1, t0, 2)); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := m.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}

	r, err := RestoreMonitor(bytes.NewReader(snap.Bytes()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.eng.Options(); got.Window != 24*time.Hour || got.MaxLateness != 2*time.Hour {
		t.Fatalf("restored engine options %+v", got)
	}
	if _, err := RestoreMonitor(bytes.NewReader(snap.Bytes()), Options{Window: time.Hour}); err == nil {
		t.Fatal("conflicting window must fail")
	}

	// A snapshot of an unbounded (batch) engine cannot seed a windowed
	// monitor: no eviction horizon was ever enforced on its contents.
	unbounded := engine.New(engine.Options{})
	unbounded.Observe(64500, 1, t0, []float64{1, 2, 3})
	var raw bytes.Buffer
	if err := unbounded.Snapshot(&raw); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreMonitor(bytes.NewReader(raw.Bytes()), Options{}); err == nil {
		t.Fatal("unbounded snapshot must be rejected")
	}
}
