package stream

import (
	"math"
	"testing"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/telemetry"
)

// TestMonitorMetricsEquivalence pins the observation-only contract of
// the telemetry hooks: a monitor wired to a caller-supplied registry
// must produce bit-identical verdicts to one running on its private
// default registry. If instrumentation ever perturbs the pipeline
// (ordering, rounding, sampling of real data), this fails.
func TestMonitorMetricsEquivalence(t *testing.T) {
	reg := telemetry.NewRegistry()
	run := func(metrics *telemetry.Registry) ([]*Verdict, []SkippedAS) {
		m := NewMonitor(Options{Window: 8 * 24 * time.Hour, Metrics: metrics})
		feedDiurnal(t, m, 100, 3, 8, 5)
		feedDiurnal(t, m, 200, 3, 8, 0)
		v, s := m.ClassifyAll()
		return v, s
	}
	base, baseSkipped := run(nil)
	got, gotSkipped := run(reg)

	if len(got) != len(base) || len(gotSkipped) != len(baseSkipped) {
		t.Fatalf("shape: %d/%d verdicts, %d/%d skipped",
			len(got), len(base), len(gotSkipped), len(baseSkipped))
	}
	for i, want := range base {
		g := got[i]
		if g.ASN != want.ASN || g.Class != want.Class || g.Probes != want.Probes {
			t.Fatalf("verdict[%d]: {%v,%v,%d} vs {%v,%v,%d}",
				i, g.ASN, g.Class, g.Probes, want.ASN, want.Class, want.Probes)
		}
		if math.Float64bits(g.DailyAmplitude) != math.Float64bits(want.DailyAmplitude) {
			t.Fatalf("verdict[%d]: amplitude %v vs %v", i, g.DailyAmplitude, want.DailyAmplitude)
		}
		if g.Signal.Len() != want.Signal.Len() {
			t.Fatalf("verdict[%d]: signal length %d vs %d", i, g.Signal.Len(), want.Signal.Len())
		}
		for j := range want.Signal.Values {
			if math.Float64bits(g.Signal.Values[j]) != math.Float64bits(want.Signal.Values[j]) {
				t.Fatalf("verdict[%d]: signal[%d] %v vs %v",
					i, j, g.Signal.Values[j], want.Signal.Values[j])
			}
		}
	}

	// The shared registry really did observe the run.
	for _, snap := range reg.Snapshot() {
		if snap.Name == "stream_classify_runs_total" && snap.Value >= 1 {
			return
		}
	}
	t.Fatal("stream_classify_runs_total missing or zero in shared registry")
}
