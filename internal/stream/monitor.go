// Package stream provides an online variant of the last-mile pipeline
// for continuous monitoring — the operational mode of the paper's
// released tool (raclette, the Internet Health Report's delay monitor).
// Traceroute results arrive in roughly-increasing time order; the monitor
// maintains a sliding window of per-probe bins with bounded memory and
// can classify any monitored AS at any moment from the current window.
package stream

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/bgp"
	"github.com/last-mile-congestion/lastmile/internal/core"
	"github.com/last-mile-congestion/lastmile/internal/lastmile"
	"github.com/last-mile-congestion/lastmile/internal/stats"
	"github.com/last-mile-congestion/lastmile/internal/timeseries"
	"github.com/last-mile-congestion/lastmile/internal/traceroute"
)

// Options configures a Monitor.
type Options struct {
	// Window is the sliding analysis window (default 15 days, the
	// paper's measurement-period length).
	Window time.Duration
	// BinWidth is the aggregation bin (default 30 minutes).
	BinWidth time.Duration
	// MinTraceroutes is the per-bin sanity threshold (default 3).
	MinTraceroutes int
	// Classifier configures the detector; the zero value selects
	// core.DefaultClassifierOptions.
	Classifier core.ClassifierOptions
	// MaxLateness tolerates out-of-order arrivals: results older than
	// Window+MaxLateness behind the newest observation are dropped
	// (default 1 hour).
	MaxLateness time.Duration
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.Window == 0 {
		o.Window = 15 * 24 * time.Hour
	}
	if o.BinWidth == 0 {
		o.BinWidth = lastmile.DefaultBinWidth
	}
	if o.MinTraceroutes == 0 {
		o.MinTraceroutes = lastmile.DefaultMinTraceroutes
	}
	if o.Classifier.MaxGapFrac == 0 {
		o.Classifier = core.DefaultClassifierOptions()
	}
	if o.MaxLateness == 0 {
		o.MaxLateness = time.Hour
	}
	return o
}

// binKey identifies a bin by its start time.
type binKey int64

// probeState is one probe's sliding window of bins.
type probeState struct {
	bins map[binKey]*binState
}

type binState struct {
	samples []float64
	groups  int
}

// Monitor ingests traceroute results and classifies ASes online. It is
// safe for concurrent use.
type Monitor struct {
	opts Options

	mu     sync.Mutex
	probes map[bgp.ASN]map[int]*probeState
	// newest is the latest observation timestamp, driving eviction.
	newest time.Time
	// Ingested and Dropped count accepted and too-late results.
	ingested, dropped int
}

// NewMonitor creates a monitor.
func NewMonitor(opts Options) *Monitor {
	return &Monitor{
		opts:   opts.withDefaults(),
		probes: make(map[bgp.ASN]map[int]*probeState),
	}
}

// Observe ingests one traceroute result for the given AS. Results without
// a usable last-mile segment are counted but ignored; results falling too
// far behind the newest observation are dropped.
func (m *Monitor) Observe(asn bgp.ASN, r *traceroute.Result) error {
	if r == nil {
		return errors.New("stream: nil result")
	}
	samples, _, ok := lastmile.Estimate(r)
	if !ok {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if r.Timestamp.After(m.newest) {
		m.newest = r.Timestamp
		m.evictLocked()
	}
	horizon := m.newest.Add(-m.opts.Window - m.opts.MaxLateness)
	if r.Timestamp.Before(horizon) {
		m.dropped++
		return nil
	}
	byProbe := m.probes[asn]
	if byProbe == nil {
		byProbe = make(map[int]*probeState)
		m.probes[asn] = byProbe
	}
	ps := byProbe[r.ProbeID]
	if ps == nil {
		ps = &probeState{bins: make(map[binKey]*binState)}
		byProbe[r.ProbeID] = ps
	}
	key := binKey(r.Timestamp.Unix() - r.Timestamp.Unix()%int64(m.opts.BinWidth/time.Second))
	bs := ps.bins[key]
	if bs == nil {
		bs = &binState{}
		ps.bins[key] = bs
	}
	bs.samples = append(bs.samples, samples...)
	bs.groups++
	m.ingested++
	return nil
}

// evictLocked removes bins that slipped out of the window.
func (m *Monitor) evictLocked() {
	horizon := m.newest.Add(-m.opts.Window - m.opts.MaxLateness).Unix()
	for asn, byProbe := range m.probes {
		for id, ps := range byProbe {
			for key := range ps.bins {
				if int64(key) < horizon {
					delete(ps.bins, key)
				}
			}
			if len(ps.bins) == 0 {
				delete(byProbe, id)
			}
		}
		if len(byProbe) == 0 {
			delete(m.probes, asn)
		}
	}
}

// Stats reports ingestion counters: accepted results and results dropped
// for arriving beyond the lateness horizon.
func (m *Monitor) Stats() (ingested, dropped int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ingested, m.dropped
}

// ASNs returns the ASes with live state, sorted.
func (m *Monitor) ASNs() []bgp.ASN {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]bgp.ASN, 0, len(m.probes))
	for asn := range m.probes {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Verdict is the outcome of an online classification.
type Verdict struct {
	ASN bgp.ASN
	// Probes contributed usable series.
	Probes int
	// Signal is the aggregated queuing delay over the current window.
	Signal *timeseries.Series
	core.Classification
}

// ClassifyAS classifies one AS from the current window: the offline
// pipeline (§2.1 + §2.3) applied to the live bins.
func (m *Monitor) ClassifyAS(asn bgp.ASN) (*Verdict, error) {
	m.mu.Lock()
	byProbe := m.probes[asn]
	if len(byProbe) == 0 {
		m.mu.Unlock()
		return nil, fmt.Errorf("stream: no state for %v", asn)
	}
	windowEnd := m.newest.Add(m.opts.BinWidth).Truncate(m.opts.BinWidth)
	windowStart := windowEnd.Add(-m.opts.Window)
	nBins := int(m.opts.Window / m.opts.BinWidth)

	// Snapshot per-probe median series under the lock; the heavy
	// spectral work happens outside it.
	var perProbe []*timeseries.Series
	for _, ps := range byProbe {
		s, err := timeseries.NewSeries(windowStart, m.opts.BinWidth, nBins)
		if err != nil {
			m.mu.Unlock()
			return nil, err
		}
		usable := false
		for key, bs := range ps.bins {
			if bs.groups < m.opts.MinTraceroutes {
				continue
			}
			t := time.Unix(int64(key), 0).UTC()
			i, ok := s.IndexOf(t)
			if !ok {
				continue
			}
			if med, err := stats.Median(bs.samples); err == nil {
				s.Values[i] = med
				usable = true
			}
		}
		if usable {
			perProbe = append(perProbe, s)
		}
	}
	m.mu.Unlock()

	if len(perProbe) == 0 {
		return nil, fmt.Errorf("stream: %v has no usable bins in the window", asn)
	}
	var qds []*timeseries.Series
	for _, s := range perProbe {
		qd, err := timeseries.SubtractMin(s)
		if err != nil {
			continue
		}
		qds = append(qds, qd)
	}
	if len(qds) == 0 {
		return nil, fmt.Errorf("stream: %v has no probe with a finite baseline", asn)
	}
	signal, err := timeseries.AggregateMedian(qds)
	if err != nil {
		return nil, err
	}
	cls, err := core.Classify(signal, m.opts.Classifier)
	if err != nil {
		return nil, fmt.Errorf("stream: %v: %w", asn, err)
	}
	return &Verdict{ASN: asn, Probes: len(qds), Signal: signal, Classification: cls}, nil
}

// ClassifyAll classifies every monitored AS, skipping those whose window
// cannot be classified yet, and returns the verdicts sorted by ASN.
func (m *Monitor) ClassifyAll() []*Verdict {
	var out []*Verdict
	for _, asn := range m.ASNs() {
		v, err := m.ClassifyAS(asn)
		if err != nil {
			continue
		}
		out = append(out, v)
	}
	return out
}
