// Package stream provides the online variant of the last-mile pipeline
// for continuous monitoring — the operational mode of the paper's
// released tool (raclette, the Internet Health Report's delay monitor).
// Traceroute results arrive in roughly-increasing time order; the
// monitor maintains a sliding window of per-probe bins with bounded
// memory and can classify any monitored AS at any moment from the
// current window.
//
// The monitor is a thin shell over the shared incremental delay engine
// (internal/engine): last-mile estimation feeds per-AS engine shards
// with striped locks, so concurrent ingestion of different ASes never
// serialises, and classification is the §2.1 + §2.3 pipeline applied to
// the engine's window — bit-for-bit the batch pipeline's result over
// the same observations.
package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/bgp"
	"github.com/last-mile-congestion/lastmile/internal/core"
	"github.com/last-mile-congestion/lastmile/internal/engine"
	"github.com/last-mile-congestion/lastmile/internal/lastmile"
	"github.com/last-mile-congestion/lastmile/internal/parallel"
	"github.com/last-mile-congestion/lastmile/internal/telemetry"
	"github.com/last-mile-congestion/lastmile/internal/timeseries"
	"github.com/last-mile-congestion/lastmile/internal/traceroute"
)

// Options configures a Monitor.
type Options struct {
	// Window is the sliding analysis window (default 15 days, the
	// paper's measurement-period length).
	Window time.Duration
	// BinWidth is the aggregation bin (default 30 minutes).
	BinWidth time.Duration
	// MinTraceroutes is the per-bin sanity threshold (default 3).
	MinTraceroutes int
	// Classifier configures the detector; the zero value selects
	// core.DefaultClassifierOptions.
	Classifier core.ClassifierOptions
	// MaxLateness tolerates out-of-order arrivals: results older than
	// Window+MaxLateness behind the newest observation are dropped
	// (default 1 hour).
	MaxLateness time.Duration
	// Shards is the number of engine lock stripes ingestion is spread
	// over, keyed by ASN (default GOMAXPROCS). Verdicts are identical
	// at any shard count.
	Shards int
	// Workers bounds the ClassifyAll fan-out (default GOMAXPROCS).
	// Output is identical at any worker count.
	Workers int
	// Metrics is the registry the monitor and its engine register their
	// instrumentation into. Nil means a private registry; telemetry is
	// observation-only either way — verdicts are bit-identical with or
	// without a shared registry (pinned by TestMonitorMetricsEquivalence).
	Metrics *telemetry.Registry
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.Window == 0 {
		o.Window = 15 * 24 * time.Hour
	}
	if o.Classifier.MaxGapFrac == 0 {
		o.Classifier = core.DefaultClassifierOptions()
	}
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Stats reports the monitor's ingestion counters and live window gauges
// (tracked ASes, probes, resident bins and samples, evicted bins), so
// operators can see window memory at a glance.
type Stats = engine.Stats

// SkippedAS records why an AS with live state could not be classified,
// so a misbehaving AS is observable instead of vanishing from the
// report.
type SkippedAS = core.SkippedAS

// Monitor ingests traceroute results and classifies ASes online. It is
// safe for concurrent use.
type Monitor struct {
	opts Options
	eng  *engine.Engine

	// ClassifyAll stage instrumentation: whole-pass duration, the two
	// per-AS stages (window signal extraction vs. §2.3 classification),
	// and verdict/skip outcome counts.
	classifyRuns    *telemetry.Counter
	classifySeconds *telemetry.Histogram
	signalStage     *telemetry.Histogram
	classifyStage   *telemetry.Histogram
	verdicts        *telemetry.Counter
	skipped         *telemetry.Counter
	ignored         *telemetry.Counter
}

// NewMonitor creates a monitor.
func NewMonitor(opts Options) *Monitor {
	opts = opts.withDefaults()
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	eng := engine.New(engine.Options{
		BinWidth:       opts.BinWidth,
		MinTraceroutes: opts.MinTraceroutes,
		Window:         opts.Window,
		MaxLateness:    opts.MaxLateness,
		Shards:         opts.Shards,
		Metrics:        reg,
	})
	return newMonitorWithEngine(opts, eng, reg)
}

// newMonitorWithEngine wraps an already-built engine — the shared tail
// of NewMonitor and RestoreMonitor.
func newMonitorWithEngine(opts Options, eng *engine.Engine, reg *telemetry.Registry) *Monitor {
	return &Monitor{
		opts:            opts,
		eng:             eng,
		classifyRuns:    reg.Counter("stream_classify_runs_total"),
		classifySeconds: reg.Histogram("stream_classify_seconds", telemetry.DefLatencyBuckets),
		signalStage:     reg.Histogram("stream_signal_stage_seconds", telemetry.DefLatencyBuckets),
		classifyStage:   reg.Histogram("stream_classify_stage_seconds", telemetry.DefLatencyBuckets),
		verdicts:        reg.Counter("stream_verdicts_total"),
		skipped:         reg.Counter("stream_skipped_total"),
		ignored:         reg.Counter("stream_ignored_total"),
	}
}

// Snapshot serializes the monitor's engine state — window, watermark,
// counters, every resident bin — to w as a wire StreamSnapshot stream
// (see engine.Snapshot). The monitor must be quiescent: callers
// checkpoint from the goroutine that drives Observe, never concurrently
// with it.
func (m *Monitor) Snapshot(w io.Writer) error { return m.eng.Snapshot(w) }

// RestoreMonitor rebuilds a monitor from a Snapshot stream, resuming
// exactly where the snapshotting monitor stopped: same window contents,
// watermark, and counters, so continue-after-restore classifies
// bit-identically to never having stopped. Semantic options left zero
// (BinWidth, MinTraceroutes, MaxLateness — and Window, which
// deliberately skips the 15-day default here) adopt the snapshot's
// values; non-zero values must match the snapshot. Runtime options
// (Shards, Workers, Classifier, Metrics) come from opts as usual.
func RestoreMonitor(r io.Reader, opts Options) (*Monitor, error) {
	raw := opts
	opts = opts.withDefaults()
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	eng, err := engine.Restore(r, engine.Options{
		// Semantic fields pass through pre-default: zero means "adopt
		// whatever the snapshot was taken with".
		BinWidth:       raw.BinWidth,
		MinTraceroutes: raw.MinTraceroutes,
		Window:         raw.Window,
		MaxLateness:    raw.MaxLateness,
		Shards:         opts.Shards,
		Metrics:        reg,
	})
	if err != nil {
		return nil, err
	}
	eo := eng.Options()
	if eo.Window == 0 {
		return nil, errors.New("stream: snapshot was taken from an unbounded engine, not a windowed monitor")
	}
	opts.BinWidth, opts.MinTraceroutes = eo.BinWidth, eo.MinTraceroutes
	opts.Window, opts.MaxLateness = eo.Window, eo.MaxLateness
	return newMonitorWithEngine(opts, eng, reg), nil
}

// errNilResult is allocated once; Observe must not build error values
// per call.
var errNilResult = errors.New("stream: nil result")

// observeScratch is the per-Observe reusable state: the pairwise-sample
// slice grows to its steady-state 9 samples on first use and is then
// recycled through observePool, keeping the ingest path allocation-free.
type observeScratch struct {
	samples []float64
}

var observePool = sync.Pool{
	New: func() any { return &observeScratch{samples: make([]float64, 0, 16)} },
}

// Observe ingests one traceroute result for the given AS. Results without
// a usable last-mile segment are ignored; results falling too far behind
// the newest observation are dropped and counted.
//
//lmvet:hotpath
func (m *Monitor) Observe(asn bgp.ASN, r *traceroute.Result) error {
	if r == nil {
		return errNilResult
	}
	sc := observePool.Get().(*observeScratch)
	samples, _, ok := lastmile.EstimateInto(sc.samples[:0], r)
	sc.samples = samples
	if !ok {
		observePool.Put(sc)
		m.ignored.Inc()
		return nil
	}
	m.eng.Observe(asn, r.ProbeID, r.Timestamp, samples)
	observePool.Put(sc)
	return nil
}

// Stats reports the engine's counters and live window gauges.
func (m *Monitor) Stats() Stats { return m.eng.Stats() }

// ASNs returns the ASes with live state, sorted.
func (m *Monitor) ASNs() []bgp.ASN { return m.eng.ASNs() }

// Newest returns the newest observation timestamp, or false before any
// observation.
func (m *Monitor) Newest() (time.Time, bool) { return m.eng.Newest() }

// BinWidth returns the monitor's effective aggregation bin width: after
// defaults, and after snapshot adoption on a resumed monitor.
func (m *Monitor) BinWidth() time.Duration { return m.eng.Options().BinWidth }

// NewestBin returns the bin key covering the newest observation — the
// cheap change detector daemon layers use to gate checkpointing and
// read-snapshot refresh on bin boundaries.
func (m *Monitor) NewestBin() (int64, bool) { return m.eng.NewestBin() }

// WindowBounds returns the current analysis window: [start,
// start+nBins*BinWidth) ending at the bin boundary just past the newest
// observation. ok is false before any observation.
func (m *Monitor) WindowBounds() (start time.Time, nBins int, ok bool) {
	return m.eng.WindowBounds()
}

// Verdict is the outcome of an online classification.
type Verdict struct {
	ASN bgp.ASN
	// Probes contributed usable series.
	Probes int
	// Signal is the aggregated queuing delay over the current window.
	Signal *timeseries.Series
	core.Classification
}

// ClassifyAS classifies one AS from the current window: the offline
// pipeline (§2.1 + §2.3) applied to the live engine shards.
func (m *Monitor) ClassifyAS(asn bgp.ASN) (*Verdict, error) {
	start, nBins, ok := m.eng.WindowBounds()
	if !ok {
		return nil, fmt.Errorf("stream: no observations yet for %v", asn)
	}
	st := m.signalStage.Start()
	signal, probes, err := m.eng.Signal(asn, start, nBins)
	st.Stop()
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	ct := m.classifyStage.Start()
	cls, err := core.Classify(signal, m.opts.Classifier)
	ct.Stop()
	if err != nil {
		return nil, fmt.Errorf("stream: %v: %w", asn, err)
	}
	return &Verdict{ASN: asn, Probes: probes, Signal: signal, Classification: cls}, nil
}

// ClassifyAll classifies every monitored AS on the monitor's worker
// pool. Verdicts come back sorted by ASN; ASes whose window cannot be
// classified yet are returned separately with their reasons, in ASN
// order.
func (m *Monitor) ClassifyAll() ([]*Verdict, []SkippedAS) {
	defer m.classifySeconds.Start().Stop()
	m.classifyRuns.Inc()
	asns := m.eng.ASNs()
	type outcome struct {
		v      *Verdict
		reason error
	}
	// ClassifyAS never returns a non-nil error through parallel.Map's
	// error path, so the outer error is always nil.
	outcomes, _ := parallel.Map(context.Background(), m.opts.Workers, len(asns), func(i int) (outcome, error) {
		v, err := m.ClassifyAS(asns[i])
		if err != nil {
			return outcome{reason: err}, nil
		}
		return outcome{v: v}, nil
	})
	var verdicts []*Verdict
	var skipped []SkippedAS
	for i, o := range outcomes {
		if o.v != nil {
			verdicts = append(verdicts, o.v)
		} else {
			skipped = append(skipped, SkippedAS{ASN: asns[i], Reason: o.reason})
		}
	}
	m.verdicts.Add(int64(len(verdicts)))
	m.skipped.Add(int64(len(skipped)))
	return verdicts, skipped
}
