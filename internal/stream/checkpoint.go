package stream

// Checkpoint/resume plumbing for long-running monitors: a Checkpointer
// periodically writes the monitor's engine snapshot to a state file —
// atomically, via a same-directory temp file and rename — so a killed
// monitor restarts from its last bin boundary instead of from nothing.
// The cadence is data-driven, not wall-clock-driven: MaybeCheckpoint
// snapshots only when the observation watermark has crossed into a new
// bin since the last checkpoint, which bounds checkpoint I/O to one
// snapshot per bin width no matter how fast results arrive, and makes
// replayed archives checkpoint exactly like live feeds.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"github.com/last-mile-congestion/lastmile/internal/engine"
	"github.com/last-mile-congestion/lastmile/internal/ioutil"
)

// OpenResult reports how Open produced its monitor.
type OpenResult struct {
	// Monitor is always non-nil on a nil error.
	Monitor *Monitor
	// Resumed is true when the monitor carries a checkpoint's state.
	Resumed bool
	// Warning is non-nil when a state file existed but was unusable —
	// truncated, bit-flipped, or not a monitor checkpoint — and the
	// monitor is a clean cold start instead. The daemon keeps running
	// (crash-recovery must never be the thing that crashes); callers
	// log the warning so the data loss is observable.
	Warning error
}

// Open builds a monitor, resuming from the checkpoint file at path when
// a usable one exists. The failure contract is deliberately asymmetric:
//
//   - No state file: clean cold start, no warning.
//   - Corrupt state file (truncation, bit flips, wrong stream type, an
//     unbounded-engine snapshot): clean cold start with Warning set —
//     never a panic, an error, or a silent partial restore. The wire
//     layer validates structure exhaustively on decode, so a snapshot
//     either restores whole or is rejected whole.
//   - Caller error (options conflicting with the snapshot's, an
//     unreadable path): a real error — these are fixable misconfigur-
//     ations, and silently ignoring them would run the wrong monitor.
func Open(path string, opts Options) (OpenResult, error) {
	if path == "" {
		return OpenResult{Monitor: NewMonitor(opts)}, nil
	}
	f, err := os.Open(path)
	switch {
	case os.IsNotExist(err):
		return OpenResult{Monitor: NewMonitor(opts)}, nil
	case err != nil:
		return OpenResult{}, fmt.Errorf("stream: open checkpoint: %w", err)
	}
	defer ioutil.CloseQuiet(f)
	m, err := RestoreMonitor(f, opts)
	switch {
	case err == nil:
		return OpenResult{Monitor: m, Resumed: true}, nil
	case errors.Is(err, engine.ErrSnapshotOptions):
		return OpenResult{}, fmt.Errorf("stream: resume from %s: %w", path, err)
	}
	return OpenResult{
		Monitor: NewMonitor(opts),
		Warning: fmt.Errorf("stream: checkpoint %s unusable, cold-starting: %w", path, err),
	}, nil
}

// Checkpointer writes periodic snapshots of one monitor to a state
// file. It is driven from the goroutine that feeds the monitor (the
// snapshot needs a quiescent engine) and is not safe for concurrent
// use.
type Checkpointer struct {
	m    *Monitor
	path string
	// lastBin is the watermark's bin key at the last checkpoint;
	// MaybeCheckpoint fires only when the watermark leaves it.
	lastBin int64
}

// NewCheckpointer returns a checkpointer writing m's snapshots to path.
// No snapshot is taken until the first Checkpoint or triggering
// MaybeCheckpoint call.
func NewCheckpointer(m *Monitor, path string) *Checkpointer {
	return &Checkpointer{m: m, path: path, lastBin: -1 << 62}
}

// MaybeCheckpoint snapshots the monitor iff the newest observation has
// crossed a bin boundary since the last checkpoint (or since start). It
// reports whether a checkpoint was written. Call it after each observed
// result; the bin-boundary gate makes that cheap — a watermark load and
// a comparison in the common case.
func (c *Checkpointer) MaybeCheckpoint() (bool, error) {
	bin, ok := c.m.NewestBin()
	if !ok {
		return false, nil
	}
	if bin == c.lastBin {
		return false, nil
	}
	if err := c.checkpointAt(bin); err != nil {
		return false, err
	}
	return true, nil
}

// Checkpoint snapshots the monitor unconditionally — the shutdown path
// (SIGTERM, end of input), where losing the partial bin since the last
// boundary is not acceptable.
func (c *Checkpointer) Checkpoint() error {
	bin, ok := c.m.NewestBin()
	if !ok {
		// Nothing observed: nothing worth persisting, and writing an
		// empty snapshot over a previous one would lose state.
		return nil
	}
	return c.checkpointAt(bin)
}

// checkpointAt writes the snapshot and records the covered bin. The
// write is atomic: snapshot to a temp file in the state file's
// directory, fsync, then rename over the target — a crash mid-write
// leaves the previous checkpoint intact, never a truncated one (the
// wire layer would detect truncation on restore, but the previous good
// state would still be gone).
func (c *Checkpointer) checkpointAt(bin int64) error {
	dir, base := filepath.Split(c.path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("stream: checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := c.m.Snapshot(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("stream: checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("stream: checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("stream: checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path); err != nil {
		return fmt.Errorf("stream: checkpoint: %w", err)
	}
	c.lastBin = bin
	return nil
}
