package stream

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/bgp"
	"github.com/last-mile-congestion/lastmile/internal/traceroute"
)

// timedResult is one attributed observation in the generated schedule.
type timedResult struct {
	asn bgp.ASN
	r   *traceroute.Result
}

// diurnalSchedule builds a time-sorted stream of traceroutes for several
// ASes with distinct diurnal bumps.
func diurnalSchedule(days int) []timedResult {
	var out []timedResult
	end := t0.AddDate(0, 0, days)
	for ts := t0; ts.Before(end); ts = ts.Add(10 * time.Minute) {
		for ai, bump := range []float64{5, 1.5, 0} {
			delta := 2.0
			if h := ts.Hour(); h >= 12 && h < 18 {
				delta += bump
			}
			for p := 1; p <= 3; p++ {
				out = append(out, timedResult{asn: bgp.ASN(100 + ai), r: mkTrace(ai*10+p, ts, delta)})
			}
		}
	}
	return out
}

// permuteWithin shuffles the schedule so that no element is displaced by
// more than maxLateness of stream time: elements are shuffled freely
// inside consecutive chunks of maxLateness/2, which bounds the timestamp
// regression any element can see to under maxLateness.
func permuteWithin(sorted []timedResult, maxLateness time.Duration, rng *rand.Rand) []timedResult {
	out := make([]timedResult, len(sorted))
	copy(out, sorted)
	chunk := maxLateness / 2
	lo := 0
	for lo < len(out) {
		hi := lo
		limit := out[lo].r.Timestamp.Add(chunk)
		for hi < len(out) && out[hi].r.Timestamp.Before(limit) {
			hi++
		}
		rng.Shuffle(hi-lo, func(i, j int) {
			out[lo+i], out[lo+j] = out[lo+j], out[lo+i]
		})
		lo = hi
	}
	return out
}

func classifyOrdered(t *testing.T, feed []timedResult, opts Options) ([]*Verdict, []SkippedAS) {
	t.Helper()
	m := NewMonitor(opts)
	for _, tr := range feed {
		if err := m.Observe(tr.asn, tr.r); err != nil {
			t.Fatal(err)
		}
	}
	if st := m.Stats(); st.Dropped != 0 {
		t.Fatalf("permuted-within-lateness feed dropped %d results", st.Dropped)
	}
	return m.ClassifyAll()
}

// TestMonitorOutOfOrderPermutationInvariance is the out-of-order
// ingestion contract: any permutation of arrivals in which elements move
// by less than MaxLateness yields bit-for-bit identical verdicts,
// because per-bin incremental medians are permutation-invariant and
// eviction never removes bins that still fall inside the analysis
// window.
func TestMonitorOutOfOrderPermutationInvariance(t *testing.T) {
	opts := Options{Window: 5 * 24 * time.Hour, MaxLateness: time.Hour}
	sorted := diurnalSchedule(6)
	want, wantSkipped := classifyOrdered(t, sorted, opts)
	if len(want) == 0 {
		t.Fatal("baseline produced no verdicts")
	}
	if len(wantSkipped) != 0 {
		t.Fatalf("baseline skipped %v", wantSkipped)
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		got, gotSkipped := classifyOrdered(t, permuteWithin(sorted, opts.MaxLateness, rng), opts)
		if len(got) != len(want) || len(gotSkipped) != 0 {
			t.Fatalf("trial %d: %d verdicts (%d skipped), want %d (0)", trial, len(got), len(gotSkipped), len(want))
		}
		for i := range want {
			w, g := want[i], got[i]
			if g.ASN != w.ASN || g.Probes != w.Probes || g.Class != w.Class || g.IsDaily != w.IsDaily {
				t.Fatalf("trial %d: verdict %d differs: {%v,%d,%v} vs {%v,%d,%v}",
					trial, i, g.ASN, g.Probes, g.Class, w.ASN, w.Probes, w.Class)
			}
			if math.Float64bits(g.DailyAmplitude) != math.Float64bits(w.DailyAmplitude) {
				t.Fatalf("trial %d: %v amplitude %v vs %v", trial, w.ASN, g.DailyAmplitude, w.DailyAmplitude)
			}
			if g.Signal.Len() != w.Signal.Len() || !g.Signal.Start.Equal(w.Signal.Start) {
				t.Fatalf("trial %d: %v signal axis differs", trial, w.ASN)
			}
			for j := range w.Signal.Values {
				if math.Float64bits(g.Signal.Values[j]) != math.Float64bits(w.Signal.Values[j]) {
					t.Fatalf("trial %d: %v signal[%d] = %v, want %v",
						trial, w.ASN, j, g.Signal.Values[j], w.Signal.Values[j])
				}
			}
		}
	}
}

// TestMonitorBeyondHorizonDropped pins the other half of the lateness
// contract: results displaced past Window+MaxLateness are dropped and
// counted as such, without disturbing resident state.
func TestMonitorBeyondHorizonDropped(t *testing.T) {
	opts := Options{Window: 2 * 24 * time.Hour, MaxLateness: time.Hour}
	m := NewMonitor(opts)
	if err := m.Observe(1, mkTrace(1, t0.AddDate(0, 0, 5), 2)); err != nil {
		t.Fatal(err)
	}
	before := m.Stats()
	// 5 days behind the newest observation: beyond the 2d+1h horizon.
	if err := m.Observe(1, mkTrace(1, t0, 2)); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", st.Dropped)
	}
	if st.Ingested != before.Ingested || st.Bins != before.Bins || st.Samples != before.Samples {
		t.Fatalf("resident state disturbed: %+v vs %+v", st, before)
	}
}
