// Package engine implements the shared incremental per-probe binning
// engine of the last-mile pipeline (§2.1): bin keying, the <3-traceroute
// discard rule, exact incremental per-bin medians, min-subtraction, and
// population aggregation. The paper's math lives here exactly once —
// the batch survey (internal/core.RunSurvey) replays a completed period
// through an unbounded engine, and the streaming monitor
// (internal/stream.Monitor) drives a windowed engine continuously; both
// produce bit-for-bit identical signals from the same observations.
//
// State is striped over N shards keyed by ASN, each with its own lock,
// so concurrent ingestion of different ASes never contends. The newest
// observation timestamp is a single atomic watermark; a shard sweeps
// its expired bins only when the watermark has crossed a bin boundary
// since the shard's last sweep, so eviction cost is amortised to one
// full-shard pass per bin width instead of one per ingested result.
package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/bgp"
	"github.com/last-mile-congestion/lastmile/internal/lastmile"
	"github.com/last-mile-congestion/lastmile/internal/telemetry"
	"github.com/last-mile-congestion/lastmile/internal/timeseries"
)

// Options configures an Engine.
type Options struct {
	// BinWidth is the aggregation bin (default 30 minutes, §2.1).
	BinWidth time.Duration
	// MinTraceroutes is the per-bin sanity threshold (default 3): bins
	// with fewer measurement groups are gaps.
	MinTraceroutes int
	// Window bounds resident state: observations older than
	// Window+MaxLateness behind the newest observation are dropped on
	// ingest and evicted from memory. Zero means unbounded — the batch
	// replay mode, where a completed period is fed in full.
	Window time.Duration
	// MaxLateness tolerates out-of-order arrivals within a windowed
	// engine (default 1 hour when Window > 0).
	MaxLateness time.Duration
	// Shards is the number of lock stripes state is spread over, keyed
	// by ASN (default 1). Results are identical at any shard count.
	Shards int
	// Metrics is the registry the engine's instrumentation registers
	// into. Nil means a private registry: the engine is always
	// instrumented (the cost is identical either way), the registry only
	// decides who can scrape it. Sharing one registry across engines
	// shares the counter series — counts then accumulate process-wide,
	// and Stats reports the shared totals.
	Metrics *telemetry.Registry
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.BinWidth == 0 {
		o.BinWidth = lastmile.DefaultBinWidth
	}
	if o.MinTraceroutes == 0 {
		o.MinTraceroutes = lastmile.DefaultMinTraceroutes
	}
	if o.MaxLateness == 0 && o.Window > 0 {
		o.MaxLateness = time.Hour
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	return o
}

// Stats reports the engine's ingestion counters and live window gauges.
type Stats struct {
	// Ingested and Dropped count accepted results and results that
	// arrived beyond the lateness horizon.
	Ingested, Dropped int64
	// ASes, Probes, Bins, and Samples gauge the resident window state.
	ASes, Probes, Bins, Samples int64
	// EvictedBins counts bins removed by watermark sweeps.
	EvictedBins int64
}

// add accumulates per-shard stats into s.
func (s *Stats) add(o Stats) {
	s.Ingested += o.Ingested
	s.Dropped += o.Dropped
	s.ASes += o.ASes
	s.Probes += o.Probes
	s.Bins += o.Bins
	s.Samples += o.Samples
	s.EvictedBins += o.EvictedBins
}

// probeWindow is one probe's resident bins, keyed by bin-start unix
// seconds (epoch-aligned, so batch and streaming agree on boundaries).
type probeWindow struct {
	bins map[int64]*timeseries.IncrementalBin
}

// asWindow is one AS's probes.
type asWindow struct {
	probes map[int]*probeWindow
}

// shard is one lock stripe: the ASes hashing to it, plus counters and
// the eviction watermark.
type shard struct {
	mu   sync.Mutex
	ases map[bgp.ASN]*asWindow
	// swept is the newest-observation bin key the shard last swept at;
	// a sweep runs only when the global watermark crosses into a new
	// bin, amortising eviction to one pass per bin width.
	swept        int64
	probes, bins int64
	samples      int64
	// tick counts Observe calls under the shard lock for the 1-in-64
	// ingest-latency sampling — a plain int, not a metric.
	tick int64
	// ingested is the shard's accepted-result series; per-shard so
	// stripe imbalance is visible on the ops endpoint.
	ingested *telemetry.Counter
	// latency is the sampled critical-section duration of Observe on
	// this shard (lock waits show up in the contention counter instead).
	latency *telemetry.Histogram
}

// Engine is the sharded incremental delay engine. It is safe for
// concurrent use.
type Engine struct {
	opts Options
	// newest is the latest observation timestamp in unix nanoseconds,
	// advanced by CAS so ingestion never serialises across shards.
	newest atomic.Int64
	shards []*shard

	// contention counts Observe calls that found their stripe locked
	// (TryLock miss) — the operational signal for shard imbalance.
	contention *telemetry.Counter
	dropped    *telemetry.Counter
	sweeps     *telemetry.Counter
	evicted    *telemetry.Counter
	// sweepSeconds times full eviction sweeps; sweeps run once per bin
	// width per shard, so the timer cost is negligible.
	sweepSeconds *telemetry.Histogram
}

// New creates an engine.
func New(opts Options) *Engine {
	opts = opts.withDefaults()
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	e := &Engine{opts: opts, shards: make([]*shard, opts.Shards)}
	e.contention = reg.Counter("engine_shard_contention_total")
	e.dropped = reg.Counter("engine_dropped_total")
	e.sweeps = reg.Counter("engine_eviction_sweeps_total")
	e.evicted = reg.Counter("engine_evicted_bins_total")
	e.sweepSeconds = reg.Histogram("engine_eviction_sweep_seconds", telemetry.DefLatencyBuckets)
	// Construction-time registration: the loop is bounded by the shard
	// count and runs exactly once per engine, never on the ingest path.
	for i := range e.shards {
		e.shards[i] = &shard{
			ases:     make(map[bgp.ASN]*asWindow),
			swept:    -1 << 62,
			ingested: reg.Counter(fmt.Sprintf(`engine_ingest_total{shard="%d"}`, i)),                                  //lmvet:ignore metricsafe once-per-engine shard registration, not a hot path
			latency:  reg.Histogram(fmt.Sprintf(`engine_ingest_seconds{shard="%d"}`, i), telemetry.DefLatencyBuckets), //lmvet:ignore metricsafe once-per-engine shard registration, not a hot path
		}
	}
	// Resident-state levels are derived from shard maps at scrape time
	// rather than maintained incrementally; last-wins replacement means a
	// rebuilt engine simply takes over the series.
	reg.GaugeFunc("engine_resident_ases", func() float64 { return float64(e.Stats().ASes) })
	reg.GaugeFunc("engine_resident_probes", func() float64 { return float64(e.Stats().Probes) })
	reg.GaugeFunc("engine_resident_bins", func() float64 { return float64(e.Stats().Bins) })
	reg.GaugeFunc("engine_resident_samples", func() float64 { return float64(e.Stats().Samples) })
	e.newest.Store(-1 << 62)
	return e
}

// Options returns the engine's effective (default-filled) options.
func (e *Engine) Options() Options { return e.opts }

// shardOf maps an ASN to its lock stripe. Fibonacci hashing spreads
// sequential ASNs (common in test and simulated worlds) evenly.
func (e *Engine) shardOf(asn bgp.ASN) *shard {
	h := uint64(asn) * 0x9e3779b97f4a7c15
	return e.shards[h%uint64(len(e.shards))]
}

// binKey returns the epoch-aligned bin start (unix seconds) covering the
// unix-second timestamp sec.
func (e *Engine) binKey(sec int64) int64 {
	w := int64(e.opts.BinWidth / time.Second)
	k := sec % w
	if k < 0 {
		k += w
	}
	return sec - k
}

// Observe ingests one measurement group (one traceroute's last-mile
// samples) for the given AS and probe at time t. It reports whether the
// result was accepted; false means it fell beyond the lateness horizon
// of a windowed engine and was dropped.
//
// This is the per-observation critical section: steady-state ingestion
// must not allocate (allocguard enforces the contract statically,
// BenchmarkMonitorObserve empirically), and telemetry under the shard
// lock is either atomic counters or gated behind the 1-in-64 sample.
//
//lmvet:hotpath
func (e *Engine) Observe(asn bgp.ASN, probeID int, t time.Time, samples []float64) bool {
	ts := t.UnixNano()
	for {
		cur := e.newest.Load()
		if ts <= cur || e.newest.CompareAndSwap(cur, ts) {
			break
		}
	}
	sh := e.shardOf(asn)
	if !sh.mu.TryLock() {
		// A miss means another goroutine holds this stripe right now;
		// the counter is how shard imbalance shows up operationally.
		e.contention.Inc()
		sh.mu.Lock()
	}
	defer sh.mu.Unlock()
	// 1-in-64 sampled critical-section latency. The tick is a plain int
	// guarded by the shard lock, and the zero Timer of the unsampled
	// path is never stopped.
	sh.tick++
	sampled := sh.tick&63 == 0
	var tm telemetry.Timer
	if sampled {
		tm = sh.latency.Start()
	}
	if e.opts.Window > 0 {
		newest := e.newest.Load()
		if ts < newest-int64(e.opts.Window)-int64(e.opts.MaxLateness) {
			e.dropped.Inc()
			if sampled {
				tm.Stop()
			}
			return false
		}
		// Amortised eviction: sweep only when the watermark entered a
		// new bin since this shard's last sweep.
		if nk := e.binKey(newest / int64(time.Second)); nk > sh.swept {
			st := e.sweepSeconds.Start() //lmvet:ignore lockorder sweep timing runs once per bin width (30min), not per observation
			e.evictShardLocked(sh, newest)
			sh.swept = nk
			st.Stop() //lmvet:ignore lockorder amortised sweep path, 1 stop per bin width
			e.sweeps.Inc()
		}
	}
	aw := sh.ases[asn]
	if aw == nil {
		aw = &asWindow{probes: make(map[int]*probeWindow)} //lmvet:ignore allocguard one window per newly seen AS, amortised to zero over steady-state ingestion
		sh.ases[asn] = aw
	}
	pw := aw.probes[probeID]
	if pw == nil {
		pw = &probeWindow{bins: make(map[int64]*timeseries.IncrementalBin)} //lmvet:ignore allocguard one window per newly seen probe, amortised to zero
		aw.probes[probeID] = pw
		sh.probes++
	}
	key := e.binKey(t.Unix())
	b := pw.bins[key]
	if b == nil {
		b = &timeseries.IncrementalBin{} //lmvet:ignore allocguard one bin per probe per 30-minute window, ~1 in 1800 observations
		pw.bins[key] = b
		sh.bins++
	}
	before := b.Len()
	b.AddGroup(samples)
	sh.samples += int64(b.Len() - before)
	sh.ingested.Inc()
	if sampled {
		tm.Stop()
	}
	return true
}

// evictShardLocked removes the shard's bins that slipped out of the
// window, along with emptied probes and ASes. Eviction never changes
// results — out-of-window bins are already ignored by Signal — it only
// bounds memory.
//
//lmvet:hotpath
func (e *Engine) evictShardLocked(sh *shard, newestNano int64) {
	horizon := (newestNano - int64(e.opts.Window) - int64(e.opts.MaxLateness)) / int64(time.Second)
	for asn, aw := range sh.ases {
		for id, pw := range aw.probes {
			for key, b := range pw.bins {
				if key < horizon {
					sh.samples -= int64(b.Len())
					sh.bins--
					e.evicted.Inc()
					delete(pw.bins, key)
				}
			}
			if len(pw.bins) == 0 {
				delete(aw.probes, id)
				sh.probes--
			}
		}
		if len(aw.probes) == 0 {
			delete(sh.ases, asn)
		}
	}
}

// Newest returns the latest observation timestamp, or a zero time when
// nothing has been observed.
func (e *Engine) Newest() (time.Time, bool) {
	n := e.newest.Load()
	if n == -1<<62 {
		return time.Time{}, false
	}
	return time.Unix(0, n).UTC(), true
}

// NewestBin returns the epoch-aligned bin key (bin-start unix seconds)
// covering the newest observation; ok is false before any observation.
// It is the cheap bin-boundary change detector shared by checkpoint
// gating and read-snapshot refresh: a watermark load and a division,
// no locks.
func (e *Engine) NewestBin() (int64, bool) {
	n := e.newest.Load()
	if n == -1<<62 {
		return 0, false
	}
	return e.binKey(n / int64(time.Second)), true
}

// WindowBounds derives the analysis window ending at the bin boundary
// just past the newest observation: [start, start + nBins*BinWidth).
// ok is false for an unbounded engine or before any observation.
func (e *Engine) WindowBounds() (start time.Time, nBins int, ok bool) {
	if e.opts.Window == 0 {
		return time.Time{}, 0, false
	}
	newest, ok := e.Newest()
	if !ok {
		return time.Time{}, 0, false
	}
	end := newest.Add(e.opts.BinWidth).Truncate(e.opts.BinWidth)
	return end.Add(-e.opts.Window), int(e.opts.Window / e.opts.BinWidth), true
}

// ASNs returns the ASes with resident state, sorted.
func (e *Engine) ASNs() []bgp.ASN {
	var out []bgp.ASN
	for _, sh := range e.shards {
		sh.mu.Lock()
		for asn := range sh.ases {
			out = append(out, asn)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats sums the per-shard counters and gauges. The monotonic counts are
// registry-backed, so with a shared Options.Metrics they report the
// registry's process-wide totals.
func (e *Engine) Stats() Stats {
	var out Stats
	for _, sh := range e.shards {
		sh.mu.Lock()
		out.add(Stats{
			Ingested: sh.ingested.Value(),
			ASes:     int64(len(sh.ases)), Probes: sh.probes,
			Bins: sh.bins, Samples: sh.samples,
		})
		sh.mu.Unlock()
	}
	out.Dropped = e.dropped.Value()
	out.EvictedBins = e.evicted.Value()
	return out
}

// Signal computes the §2.1 population queuing-delay signal of one AS
// over the window [start, start + nBins*BinWidth): per-probe median-RTT
// series with the <MinTraceroutes discard rule applied, per-probe
// min-subtraction, then the median across probes. It returns the signal
// and the number of contributing probes. Only the per-probe snapshot
// runs under the shard lock; the aggregation happens outside it.
func (e *Engine) Signal(asn bgp.ASN, start time.Time, nBins int) (*timeseries.Series, int, error) {
	perProbe, err := e.snapshotAS(asn, start, nBins)
	if err != nil {
		return nil, 0, err
	}
	var qds []*timeseries.Series
	for _, s := range perProbe {
		qd, err := timeseries.SubtractMin(s)
		if err != nil {
			continue
		}
		qds = append(qds, qd)
	}
	if len(qds) == 0 {
		return nil, 0, fmt.Errorf("engine: %v has no probe with a finite baseline", asn)
	}
	agg, err := timeseries.AggregateMedian(qds)
	if err != nil {
		return nil, 0, err
	}
	return agg, len(qds), nil
}

// snapshotAS materialises the AS's per-probe median series over the
// window under the shard lock. Probes with no usable bin are omitted.
func (e *Engine) snapshotAS(asn bgp.ASN, start time.Time, nBins int) ([]*timeseries.Series, error) {
	sh := e.shardOf(asn)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	aw := sh.ases[asn]
	if aw == nil || len(aw.probes) == 0 {
		return nil, fmt.Errorf("engine: no state for %v", asn)
	}
	var perProbe []*timeseries.Series
	for _, pw := range aw.probes {
		s, err := timeseries.NewSeries(start, e.opts.BinWidth, nBins)
		if err != nil {
			return nil, err
		}
		usable := false
		for key, b := range pw.bins {
			if b.Groups() < e.opts.MinTraceroutes {
				continue
			}
			i, ok := s.IndexOf(time.Unix(key, 0).UTC())
			if !ok {
				continue
			}
			if med, ok := b.Median(); ok {
				s.Values[i] = med
				usable = true
			}
		}
		if usable {
			perProbe = append(perProbe, s)
		}
	}
	if len(perProbe) == 0 {
		return nil, fmt.Errorf("engine: %v has no usable bins in the window", asn)
	}
	return perProbe, nil
}
