package engine

// Engine merging — the reduce step of map-reduce ingestion. K engines
// fed disjoint slices of one observation stream merge into a single
// engine whose signals are bit-identical to one engine having seen the
// whole stream: per-bin medians are exact order statistics
// (timeseries.IncrementalBin.Merge), so the union is
// permutation-invariant, which is also what makes Merge commutative and
// associative up to internal heap layout.

import (
	"fmt"
)

// Merge folds other's resident state, watermark, and counters into e.
// Both engines must agree on the semantic options (BinWidth,
// MinTraceroutes, Window, MaxLateness); shard counts and watermarks may
// differ freely — state is re-striped onto e's shards as it moves, and
// the merged watermark is the maximum of the two.
//
// Merge consumes other: its bins and windows are moved, not copied, so
// the merge of a disjoint split is allocation-light, and other must not
// be used afterwards. Counter series are registry-backed, so other's
// ingested/dropped/evicted totals are added to e's only when the two
// engines use distinct registries — with a shared Options.Metrics the
// series are already the same and adding would double-count.
//
// Both engines must be quiescent (no concurrent Observe or Signal); the
// map-reduce driver merges only after every feeder has finished.
func (e *Engine) Merge(other *Engine) error {
	if other == e {
		return fmt.Errorf("engine: cannot merge an engine into itself")
	}
	if e.opts.BinWidth != other.opts.BinWidth || e.opts.MinTraceroutes != other.opts.MinTraceroutes ||
		e.opts.Window != other.opts.Window || e.opts.MaxLateness != other.opts.MaxLateness {
		return fmt.Errorf("%w: (bin=%v min=%d window=%v lateness=%v) vs (bin=%v min=%d window=%v lateness=%v)",
			ErrSnapshotOptions,
			e.opts.BinWidth, e.opts.MinTraceroutes, e.opts.Window, e.opts.MaxLateness,
			other.opts.BinWidth, other.opts.MinTraceroutes, other.opts.Window, other.opts.MaxLateness)
	}
	// Max-merge the watermark first so windowed lateness math in e is
	// already correct for any state moved below.
	if on := other.newest.Load(); on != -1<<62 {
		for {
			cur := e.newest.Load()
			if on <= cur || e.newest.CompareAndSwap(cur, on) {
				break
			}
		}
	}
	for _, osh := range other.shards {
		osh.mu.Lock()
		for asn, oaw := range osh.ases {
			delete(osh.ases, asn)
			sh := e.shardOf(asn)
			sh.mu.Lock()
			aw := sh.ases[asn]
			if aw == nil {
				// AS unseen by e: adopt the whole window.
				sh.ases[asn] = oaw
				sh.probes += int64(len(oaw.probes))
				for _, pw := range oaw.probes {
					sh.bins += int64(len(pw.bins))
					for _, b := range pw.bins {
						sh.samples += int64(b.Len())
					}
				}
				sh.mu.Unlock()
				continue
			}
			for id, opw := range oaw.probes {
				pw := aw.probes[id]
				if pw == nil {
					aw.probes[id] = opw
					sh.probes++
					sh.bins += int64(len(opw.bins))
					for _, b := range opw.bins {
						sh.samples += int64(b.Len())
					}
					continue
				}
				for key, ob := range opw.bins {
					b := pw.bins[key]
					if b == nil {
						pw.bins[key] = ob
						sh.bins++
						sh.samples += int64(ob.Len())
						continue
					}
					b.Merge(ob)
					sh.samples += int64(ob.Len())
				}
			}
			sh.mu.Unlock()
		}
		// Re-striping moved everything out; zero the source gauges so a
		// stray Stats on the consumed engine reads empty instead of stale.
		osh.probes, osh.bins, osh.samples = 0, 0, 0
		osh.mu.Unlock()
	}
	if e.dropped != other.dropped {
		// Distinct registries: fold other's monotonic series into e's.
		var ingested int64
		for _, osh := range other.shards {
			ingested += osh.ingested.Value()
		}
		e.shards[0].ingested.Add(ingested)
		e.dropped.Add(other.dropped.Value())
		e.evicted.Add(other.evicted.Value())
	}
	return nil
}
