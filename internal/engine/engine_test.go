package engine

import (
	"math"
	"sync"
	"testing"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/bgp"
	"github.com/last-mile-congestion/lastmile/internal/timeseries"
)

var t0 = time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)

// feed ingests a diurnal delay pattern: nProbes probes sending one
// 9-sample traceroute every 10 minutes for the given number of days,
// with a bump during 12:00-18:00.
func feed(e *Engine, asn bgp.ASN, nProbes, days int, bumpMs float64) {
	end := t0.AddDate(0, 0, days)
	samples := make([]float64, 9)
	for ts := t0; ts.Before(end); ts = ts.Add(10 * time.Minute) {
		delta := 2.0
		if h := ts.Hour(); h >= 12 && h < 18 {
			delta += bumpMs
		}
		for i := range samples {
			samples[i] = delta
		}
		for p := 1; p <= nProbes; p++ {
			e.Observe(asn, p, ts, samples)
		}
	}
}

func sameValues(t *testing.T, label string, a, b *timeseries.Series) {
	t.Helper()
	if a.Len() != b.Len() || !a.Start.Equal(b.Start) || a.Step != b.Step {
		t.Fatalf("%s: axis differs", label)
	}
	for i := range a.Values {
		if math.Float64bits(a.Values[i]) != math.Float64bits(b.Values[i]) {
			t.Fatalf("%s[%d]: %v vs %v", label, i, a.Values[i], b.Values[i])
		}
	}
}

func TestEngineSignalBasic(t *testing.T) {
	e := New(Options{})
	feed(e, 64500, 3, 2, 5)
	start := t0
	nBins := int(48 * time.Hour / e.Options().BinWidth)
	signal, probes, err := e.Signal(64500, start, nBins)
	if err != nil {
		t.Fatal(err)
	}
	if probes != 3 {
		t.Fatalf("probes = %d, want 3", probes)
	}
	if signal.Len() != nBins {
		t.Fatalf("len = %d, want %d", signal.Len(), nBins)
	}
	// Quiet bins sit at 0 after min-subtraction, bump bins at ~5.
	if v := signal.Values[0]; v != 0 {
		t.Fatalf("quiet bin = %v, want 0", v)
	}
	bump := signal.Values[25] // 12:30
	if math.Abs(bump-5) > 1e-9 {
		t.Fatalf("bump bin = %v, want 5", bump)
	}
}

func TestEngineShardCountEquivalence(t *testing.T) {
	// The same observations at 1 and 8 shards must yield identical
	// ASNs, stats, and bit-for-bit identical signals.
	e1 := New(Options{Shards: 1})
	e8 := New(Options{Shards: 8})
	for _, e := range []*Engine{e1, e8} {
		for asn := bgp.ASN(100); asn < 120; asn++ {
			feed(e, asn, 3, 2, float64(asn%7))
		}
	}
	a1, a8 := e1.ASNs(), e8.ASNs()
	if len(a1) != len(a8) {
		t.Fatalf("ASN count %d vs %d", len(a1), len(a8))
	}
	s1, s8 := e1.Stats(), e8.Stats()
	if s1 != s8 {
		t.Fatalf("stats differ: %+v vs %+v", s1, s8)
	}
	nBins := int(48 * time.Hour / e1.Options().BinWidth)
	for i, asn := range a1 {
		if asn != a8[i] {
			t.Fatalf("ASNs[%d] = %v vs %v", i, asn, a8[i])
		}
		sig1, n1, err1 := e1.Signal(asn, t0, nBins)
		sig8, n8, err8 := e8.Signal(asn, t0, nBins)
		if (err1 == nil) != (err8 == nil) {
			t.Fatalf("%v: err %v vs %v", asn, err1, err8)
		}
		if err1 != nil {
			continue
		}
		if n1 != n8 {
			t.Fatalf("%v: probes %d vs %d", asn, n1, n8)
		}
		sameValues(t, asn.String(), sig1, sig8)
	}
}

func TestEngineMinTraceroutesRule(t *testing.T) {
	e := New(Options{})
	// Two traceroutes per bin: below the default threshold of 3.
	samples := []float64{2, 2, 2}
	for ts := t0; ts.Before(t0.Add(24 * time.Hour)); ts = ts.Add(15 * time.Minute) {
		e.Observe(64500, 1, ts, samples)
	}
	if _, _, err := e.Signal(64500, t0, 48); err == nil {
		t.Fatal("2 traceroutes/bin must not be usable under min=3")
	}
}

func TestEngineUnknownAS(t *testing.T) {
	e := New(Options{})
	if _, _, err := e.Signal(999, t0, 48); err == nil {
		t.Fatal("want error for unknown AS")
	}
}

func TestEngineWatermarkEviction(t *testing.T) {
	e := New(Options{Window: 2 * 24 * time.Hour, MaxLateness: time.Hour})
	feed(e, 64500, 2, 1, 0)
	full := e.Stats()
	if full.Bins == 0 || full.Samples == 0 || full.Probes != 2 || full.ASes != 1 {
		t.Fatalf("gauges after feed: %+v", full)
	}
	// Jump 10 days ahead: everything resident must be swept on the next
	// observation touching the shard.
	late := t0.AddDate(0, 0, 10)
	e.Observe(64500, 1, late, []float64{1})
	st := e.Stats()
	if st.EvictedBins != full.Bins {
		t.Fatalf("evicted %d bins, want %d", st.EvictedBins, full.Bins)
	}
	if st.Bins != 1 || st.Probes != 1 {
		t.Fatalf("resident after sweep: %+v", st)
	}
	// A result behind the lateness horizon is dropped and counted.
	if e.Observe(64500, 1, t0, []float64{1}) {
		t.Fatal("beyond-horizon result must be dropped")
	}
	if st := e.Stats(); st.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", st.Dropped)
	}
}

func TestEngineEvictionSweepIsAmortized(t *testing.T) {
	e := New(Options{Window: 24 * time.Hour})
	// Two observations inside one bin must trigger at most one sweep;
	// crossing into the next bin triggers exactly one more.
	e.Observe(1, 1, t0, []float64{1})
	sweeps0 := e.shards[0].swept
	e.Observe(1, 1, t0.Add(time.Minute), []float64{1})
	if e.shards[0].swept != sweeps0 {
		t.Fatal("sweep ran twice within one bin")
	}
	e.Observe(1, 1, t0.Add(31*time.Minute), []float64{1})
	if e.shards[0].swept == sweeps0 {
		t.Fatal("sweep did not run after crossing a bin boundary")
	}
}

func TestEngineUnboundedNeverDropsOrEvicts(t *testing.T) {
	e := New(Options{})
	e.Observe(1, 1, t0.AddDate(0, 0, 30), []float64{1})
	if !e.Observe(1, 1, t0, []float64{1}) {
		t.Fatal("unbounded engine must accept arbitrarily old results")
	}
	st := e.Stats()
	if st.Dropped != 0 || st.EvictedBins != 0 || st.Ingested != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestEngineWindowBounds(t *testing.T) {
	e := New(Options{Window: 24 * time.Hour})
	if _, _, ok := e.WindowBounds(); ok {
		t.Fatal("bounds before any observation")
	}
	e.Observe(1, 1, t0.Add(90*time.Minute+7*time.Second), []float64{1})
	start, n, ok := e.WindowBounds()
	if !ok {
		t.Fatal("no bounds after observation")
	}
	if n != 48 {
		t.Fatalf("nBins = %d, want 48", n)
	}
	wantStart := t0.Add(2 * time.Hour).Add(-24 * time.Hour)
	if !start.Equal(wantStart) {
		t.Fatalf("start = %v, want %v", start, wantStart)
	}
	if _, _, ok := New(Options{}).WindowBounds(); ok {
		t.Fatal("unbounded engine must not derive bounds")
	}
}

func TestEngineConcurrentObserve(t *testing.T) {
	e := New(Options{Window: 3 * 24 * time.Hour, Shards: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				ts := t0.Add(time.Duration(i) * 5 * time.Minute)
				e.Observe(bgp.ASN(100+g), g, ts, []float64{1, 2, 3})
			}
		}(g)
	}
	wg.Wait()
	st := e.Stats()
	if st.Ingested != 4000 {
		t.Fatalf("ingested = %d, want 4000", st.Ingested)
	}
	if st.ASes != 8 {
		t.Fatalf("ASes = %d, want 8", st.ASes)
	}
}
