package engine

// Engine state serialization: Snapshot writes the engine's complete
// resident state — configuration, watermark, monotonic counters, and
// every (AS, probe, bin) two-heap median cell — as a wire StreamSnapshot
// stream, and Restore rebuilds an equivalent engine from one. The
// equivalence is behavioral, pinned by TestSnapshotRestoreContinue:
// restore-then-continue produces bit-identical signals, stats, and
// eviction behavior to never having stopped.

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/timeseries"
	"github.com/last-mile-congestion/lastmile/internal/wire"
)

// ErrSnapshotOptions marks a Restore or Merge whose engine options
// disagree with the state being loaded on a semantic field (bin width,
// traceroute threshold, window, lateness). Loading state across
// differing bin semantics would silently change verdicts, so it is
// refused instead.
var ErrSnapshotOptions = errors.New("engine: snapshot options mismatch")

// Snapshot serializes the engine's state to w as a wire StreamSnapshot
// stream: one meta frame, then one frame per resident (AS, probe)
// window, ASes in ascending ASN order and probes in ascending ID order,
// so equal states produce equal bytes. Each AS's shard is locked only
// while that AS is encoded; for a frame-consistent snapshot the engine
// must be quiescent (no concurrent Observe), which is how the stream
// monitor drives it — checkpoints run from the single feed loop.
func (e *Engine) Snapshot(w io.Writer) error {
	sw := wire.NewSnapshotWriter(w)
	st := e.Stats()
	meta := wire.SnapshotMeta{
		BinWidth:       e.opts.BinWidth,
		MinTraceroutes: e.opts.MinTraceroutes,
		Window:         e.opts.Window,
		MaxLateness:    e.opts.MaxLateness,
		Ingested:       st.Ingested,
		Dropped:        st.Dropped,
		EvictedBins:    st.EvictedBins,
	}
	if n := e.newest.Load(); n != -1<<62 {
		meta.HasNewest = true
		meta.NewestNano = n
	}
	if err := sw.WriteMeta(&meta); err != nil {
		return err
	}
	// One reused probe frame: bin and heap storage reaches the largest
	// window once, then every probe encodes allocation-free.
	var p wire.SnapshotProbe
	var probeIDs []int
	var keys []int64
	for _, asn := range e.ASNs() {
		sh := e.shardOf(asn)
		sh.mu.Lock()
		aw := sh.ases[asn]
		if aw == nil {
			// Evicted between ASNs() and here; only possible on a
			// non-quiescent engine, and skipping is still a valid state.
			sh.mu.Unlock()
			continue
		}
		probeIDs = probeIDs[:0]
		for id := range aw.probes {
			probeIDs = append(probeIDs, id)
		}
		sort.Ints(probeIDs)
		for _, id := range probeIDs {
			pw := aw.probes[id]
			keys = keys[:0]
			for key := range pw.bins {
				keys = append(keys, key)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			p.ASN = asn
			p.ProbeID = id
			p.Bins = p.Bins[:0]
			for _, key := range keys {
				lo, hi, groups := pw.bins[key].Snapshot()
				p.Bins = append(p.Bins, wire.SnapshotBin{Key: key, Groups: groups, Lo: lo, Hi: hi})
			}
			if err := sw.WriteProbe(&p); err != nil {
				sh.mu.Unlock()
				return err
			}
		}
		sh.mu.Unlock()
	}
	return sw.Flush()
}

// Restore rebuilds an engine from a Snapshot stream. Semantic options
// (BinWidth, MinTraceroutes, Window, MaxLateness) left zero in opts
// adopt the snapshot's values; non-zero values must match the snapshot
// (ErrSnapshotOptions otherwise). Runtime options — Shards, Metrics —
// come from opts: a snapshot taken at one shard count restores at any
// other, because shard striping never affects results.
//
// The stream is fully re-validated on the way in (wire framing,
// canonical varints, two-heap invariants), so a truncated or corrupted
// snapshot fails with a typed wire error and never yields a partially
// trusted engine.
func Restore(r io.Reader, opts Options) (*Engine, error) {
	sc := wire.NewSnapshotScanner(r)
	meta, err := sc.Meta()
	if err != nil {
		return nil, err
	}
	if opts.BinWidth == 0 {
		opts.BinWidth = meta.BinWidth
	}
	if opts.MinTraceroutes == 0 {
		opts.MinTraceroutes = meta.MinTraceroutes
	}
	if opts.Window == 0 {
		opts.Window = meta.Window
	}
	if opts.MaxLateness == 0 {
		opts.MaxLateness = meta.MaxLateness
	}
	if opts.BinWidth != meta.BinWidth || opts.MinTraceroutes != meta.MinTraceroutes ||
		opts.Window != meta.Window || opts.MaxLateness != meta.MaxLateness {
		return nil, fmt.Errorf("%w: snapshot (bin=%v min=%d window=%v lateness=%v) vs options (bin=%v min=%d window=%v lateness=%v)",
			ErrSnapshotOptions,
			meta.BinWidth, meta.MinTraceroutes, meta.Window, meta.MaxLateness,
			opts.BinWidth, opts.MinTraceroutes, opts.Window, opts.MaxLateness)
	}
	e := New(opts)
	for sc.Scan() {
		p := sc.Probe()
		sh := e.shardOf(p.ASN)
		aw := sh.ases[p.ASN]
		if aw == nil {
			aw = &asWindow{probes: make(map[int]*probeWindow)}
			sh.ases[p.ASN] = aw
		}
		if aw.probes[p.ProbeID] != nil {
			return nil, fmt.Errorf("engine: snapshot repeats probe %d of %v: %w", p.ProbeID, p.ASN, wire.ErrBadFrame)
		}
		pw := &probeWindow{bins: make(map[int64]*timeseries.IncrementalBin, len(p.Bins))}
		aw.probes[p.ProbeID] = pw
		sh.probes++
		for i := range p.Bins {
			sb := &p.Bins[i]
			// The scanner reuses heap storage across frames; the restored
			// bin owns its slices.
			lo := append([]float64(nil), sb.Lo...)
			hi := append([]float64(nil), sb.Hi...)
			bin, err := timeseries.RestoreBin(lo, hi, sb.Groups)
			if err != nil {
				// Unreachable through the wire decoder, which validates
				// heap state per frame; kept for defense in depth.
				return nil, fmt.Errorf("engine: probe %d of %v: %v: %w", p.ProbeID, p.ASN, err, wire.ErrBadFrame)
			}
			pw.bins[sb.Key] = bin
			sh.bins++
			sh.samples += int64(bin.Len())
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if meta.HasNewest {
		e.newest.Store(meta.NewestNano)
		if opts.Window > 0 {
			// The snapshotting engine swept each shard when the watermark
			// last crossed a bin boundary; starting the restored shards at
			// that same sweep mark keeps eviction cadence — and the
			// EvictedBins counter — aligned with an engine that never
			// stopped.
			swept := e.binKey(meta.NewestNano / int64(time.Second))
			for _, sh := range e.shards {
				sh.swept = swept
			}
		}
	}
	// Carry the monotonic counters across the restart so operator-visible
	// totals are continuous. Ingested lands on shard 0's series: per-shard
	// attribution is a live-balance diagnostic, not state worth splitting
	// a snapshot over.
	e.shards[0].ingested.Add(meta.Ingested)
	e.dropped.Add(meta.Dropped)
	e.evicted.Add(meta.EvictedBins)
	return e, nil
}
