package engine

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/bgp"
	"github.com/last-mile-congestion/lastmile/internal/telemetry"
	"github.com/last-mile-congestion/lastmile/internal/wire"
)

// snapEqual asserts two engines are observably identical: same ASNs,
// same stats, and bit-identical signals over nBins from start.
func snapEqual(t *testing.T, a, b *Engine, start time.Time, nBins int) {
	t.Helper()
	aa, ba := a.ASNs(), b.ASNs()
	if len(aa) != len(ba) {
		t.Fatalf("ASN count %d vs %d", len(aa), len(ba))
	}
	if sa, sb := a.Stats(), b.Stats(); sa != sb {
		t.Fatalf("stats differ: %+v vs %+v", sa, sb)
	}
	for i, asn := range aa {
		if asn != ba[i] {
			t.Fatalf("ASNs[%d] = %v vs %v", i, asn, ba[i])
		}
		siga, na, erra := a.Signal(asn, start, nBins)
		sigb, nb, errb := b.Signal(asn, start, nBins)
		if (erra == nil) != (errb == nil) {
			t.Fatalf("%v: err %v vs %v", asn, erra, errb)
		}
		if erra != nil {
			continue
		}
		if na != nb {
			t.Fatalf("%v: probes %d vs %d", asn, na, nb)
		}
		sameValues(t, asn.String(), siga, sigb)
	}
}

// TestEngineSnapshotRestoreContinue pins the tentpole resume contract:
// snapshot mid-stream, restore, feed the remainder — every verdict
// input must be bit-identical to a never-interrupted engine, including
// eviction cadence and counters.
func TestEngineSnapshotRestoreContinue(t *testing.T) {
	opts := Options{Window: 4 * 24 * time.Hour, MaxLateness: 12 * time.Hour}
	interrupted := New(opts)
	uninterrupted := New(opts)

	// First half of the stream, then freeze.
	for asn := bgp.ASN(100); asn < 110; asn++ {
		feed(interrupted, asn, 3, 3, float64(asn%5))
		feed(uninterrupted, asn, 3, 3, float64(asn%5))
	}
	var buf bytes.Buffer
	if err := interrupted.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(bytes.NewReader(buf.Bytes()), Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Second half: feed the restored engine and the uninterrupted one
	// identically. Late enough to slide the window and evict.
	for asn := bgp.ASN(100); asn < 110; asn++ {
		late := t0.AddDate(0, 0, 5)
		for i := 0; i < 100; i++ {
			ts := late.Add(time.Duration(i) * 10 * time.Minute)
			restored.Observe(asn, 1, ts, []float64{3, 4, 5})
			uninterrupted.Observe(asn, 1, ts, []float64{3, 4, 5})
		}
		// A too-late result must be dropped by both.
		restored.Observe(asn, 2, t0, []float64{1})
		uninterrupted.Observe(asn, 2, t0, []float64{1})
	}
	nBins := int(4 * 24 * time.Hour / restored.Options().BinWidth)
	snapEqual(t, restored, uninterrupted, t0.AddDate(0, 0, 5), nBins)
}

// TestEngineSnapshotDeterministic pins byte-level reproducibility:
// snapshotting the same state twice — or a restored copy of it — must
// produce identical bytes, which is what makes checkpoint diffs and
// content-addressed storage meaningful.
func TestEngineSnapshotDeterministic(t *testing.T) {
	e := New(Options{Window: 2 * 24 * time.Hour})
	for asn := bgp.ASN(200); asn < 208; asn++ {
		feed(e, asn, 2, 2, 3)
	}
	var a, b bytes.Buffer
	if err := e.Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := e.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two snapshots of the same state differ")
	}
	restored, err := Restore(bytes.NewReader(a.Bytes()), Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	var c bytes.Buffer
	if err := restored.Snapshot(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("restore→snapshot is not byte-stable")
	}
}

func TestEngineRestoreOptions(t *testing.T) {
	e := New(Options{Window: 24 * time.Hour, MaxLateness: 2 * time.Hour})
	feed(e, 64500, 2, 1, 1)
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Zero semantic options adopt the snapshot's.
	r, err := Restore(bytes.NewReader(buf.Bytes()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.Options(), e.Options(); got.BinWidth != want.BinWidth ||
		got.Window != want.Window || got.MaxLateness != want.MaxLateness ||
		got.MinTraceroutes != want.MinTraceroutes {
		t.Fatalf("restored options %+v, want %+v", got, want)
	}

	// Conflicting semantic options are a typed error, not silent
	// reinterpretation of the snapshotted bins.
	if _, err := Restore(bytes.NewReader(buf.Bytes()), Options{BinWidth: time.Minute}); !errors.Is(err, ErrSnapshotOptions) {
		t.Fatalf("bin-width conflict: %v", err)
	}
	if _, err := Restore(bytes.NewReader(buf.Bytes()), Options{Window: time.Hour}); !errors.Is(err, ErrSnapshotOptions) {
		t.Fatalf("window conflict: %v", err)
	}

	// A corrupt stream surfaces the wire layer's typed error.
	raw := buf.Bytes()
	if _, err := Restore(bytes.NewReader(raw[:len(raw)-2]), Options{}); !errors.Is(err, wire.ErrShortFrame) {
		t.Fatalf("truncated snapshot: %v", err)
	}
}

// splitFeed round-robins the standard feed across k engines by
// observation index — the map phase of a map-reduce replay.
func splitFeed(engines []*Engine, asns []bgp.ASN) {
	i := 0
	samples := make([]float64, 9)
	for _, asn := range asns {
		end := t0.AddDate(0, 0, 2)
		for ts := t0; ts.Before(end); ts = ts.Add(10 * time.Minute) {
			delta := 2.0
			if h := ts.Hour(); h >= 12 && h < 18 {
				delta += float64(asn % 7)
			}
			for j := range samples {
				samples[j] = delta
			}
			for p := 1; p <= 3; p++ {
				engines[i%len(engines)].Observe(asn, p, ts, samples)
				i++
			}
		}
	}
}

// TestEngineMergeEquivalence is the map-reduce pin: the same dataset
// split K ways across engines with differing shard counts, merged,
// must be observably identical to one engine having seen everything —
// K ∈ {1, 2, 8}.
func TestEngineMergeEquivalence(t *testing.T) {
	asns := make([]bgp.ASN, 0, 12)
	for asn := bgp.ASN(300); asn < 312; asn++ {
		asns = append(asns, asn)
	}
	single := New(Options{})
	splitFeed([]*Engine{single}, asns)
	nBins := int(48 * time.Hour / single.Options().BinWidth)

	for _, k := range []int{1, 2, 8} {
		engines := make([]*Engine, k)
		for i := range engines {
			// Differing shard counts per engine: merge must re-stripe.
			engines[i] = New(Options{Shards: 1 << (i % 4)})
		}
		splitFeed(engines, asns)
		merged := engines[0]
		for _, o := range engines[1:] {
			if err := merged.Merge(o); err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
		}
		snapEqual(t, merged, single, t0, nBins)
	}
}

// TestEngineMergeCommutesAndAssociates pins the algebra DESIGN.md
// promises: merge order never changes an observable.
func TestEngineMergeCommutesAndAssociates(t *testing.T) {
	asns := []bgp.ASN{400, 401, 402, 403, 404}
	build := func() []*Engine {
		engines := []*Engine{New(Options{}), New(Options{Shards: 2}), New(Options{Shards: 4})}
		splitFeed(engines, asns)
		return engines
	}
	nBins := int(48 * time.Hour / New(Options{}).Options().BinWidth)

	// (a⊕b)⊕c
	left := build()
	if err := left[0].Merge(left[1]); err != nil {
		t.Fatal(err)
	}
	if err := left[0].Merge(left[2]); err != nil {
		t.Fatal(err)
	}
	// c⊕(b⊕a) — reversed association and reversed operand order.
	right := build()
	if err := right[1].Merge(right[0]); err != nil {
		t.Fatal(err)
	}
	if err := right[2].Merge(right[1]); err != nil {
		t.Fatal(err)
	}
	snapEqual(t, left[0], right[2], t0, nBins)
}

func TestEngineMergeErrors(t *testing.T) {
	e := New(Options{})
	if err := e.Merge(e); err == nil {
		t.Fatal("self-merge must fail")
	}
	other := New(Options{BinWidth: time.Minute})
	if err := e.Merge(other); !errors.Is(err, ErrSnapshotOptions) {
		t.Fatalf("options mismatch: %v", err)
	}
}

// TestEngineMergeSharedRegistryCounters pins the counter-fold gate:
// engines created against one registry share counters, so merging them
// must not double-count; engines with distinct registries must fold.
func TestEngineMergeSharedRegistryCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	a := New(Options{Metrics: reg})
	b := New(Options{Metrics: reg})
	feed(a, 1, 1, 1, 0)
	feed(b, 2, 1, 1, 0)
	want := a.Stats().Ingested // shared counter already holds both feeds
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().Ingested; got != want {
		t.Fatalf("shared-registry merge changed Ingested: %d -> %d", want, got)
	}

	c, d := New(Options{}), New(Options{})
	feed(c, 1, 1, 1, 0)
	feed(d, 2, 1, 1, 0)
	wantSum := c.Stats().Ingested + d.Stats().Ingested
	if err := c.Merge(d); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Ingested; got != wantSum {
		t.Fatalf("distinct-registry merge Ingested = %d, want %d", got, wantSum)
	}
}

// benchEngine builds a populated engine for the state-codec benchmarks:
// 32 ASes × 4 probes × 2 days at 10-minute cadence.
func benchEngine(tb testing.TB, opts Options) *Engine {
	e := New(opts)
	for asn := bgp.ASN(64500); asn < 64532; asn++ {
		feed(e, asn, 4, 2, float64(asn%7))
	}
	return e
}

// BenchmarkSnapshot measures serializing a resident window: one op
// writes the full engine state, MB/s is snapshot bytes over wall time.
func BenchmarkSnapshot(b *testing.B) {
	e := benchEngine(b, Options{Window: 4 * 24 * time.Hour})
	var size bytes.Buffer
	if err := e.Snapshot(&size); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(size.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Snapshot(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMerge measures folding one engine into another. The consumed
// source is rebuilt outside the timer by restoring its snapshot, so one
// op is exactly one Merge; MB/s is source-state bytes over merge time.
func BenchmarkMerge(b *testing.B) {
	src := benchEngine(b, Options{Window: 4 * 24 * time.Hour})
	var snap bytes.Buffer
	if err := src.Snapshot(&snap); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(snap.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dst := New(Options{Window: 4 * 24 * time.Hour})
		feed(dst, 64400, 4, 2, 3)
		other, err := Restore(bytes.NewReader(snap.Bytes()), Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := dst.Merge(other); err != nil {
			b.Fatal(err)
		}
	}
}
