package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrLengthMismatch is returned by correlation functions when the two
// samples have different lengths.
var ErrLengthMismatch = errors.New("stats: samples have different lengths")

// ErrTooFew is returned when a correlation is requested on fewer than two
// usable observation pairs.
var ErrTooFew = errors.New("stats: need at least two observation pairs")

// Ranks returns the fractional (mid) ranks of xs, 1-based: the smallest
// value has rank 1 and ties receive the average of the ranks they span.
// This is the tie handling required by Spearman's rank correlation.
// NaN values receive rank NaN and do not occupy a rank; comparing a NaN
// inside the sort would otherwise place it at an arbitrary position.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	ranks := make([]float64, n)
	idx := make([]int, 0, n)
	for i, v := range xs {
		if math.IsNaN(v) {
			ranks[i] = math.NaN()
			continue
		}
		idx = append(idx, i)
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	m := len(idx)
	for i := 0; i < m; {
		j := i
		// The slice is ascending, so "not greater" means tied with i.
		for j+1 < m && xs[idx[j+1]] <= xs[idx[i]] {
			j++
		}
		// Positions i..j (0-based) are tied; average 1-based rank.
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Pearson returns the Pearson product-moment correlation coefficient of the
// paired samples xs and ys.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLengthMismatch
	}
	if len(xs) < 2 {
		return 0, ErrTooFew
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance sample")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns Spearman's rank correlation coefficient rho of the
// paired samples xs and ys, with average-rank tie handling. Pairs in which
// either value is NaN are dropped first, which is how the paper joins the
// delay and throughput time series (bins missing from either side are
// ignored).
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLengthMismatch
	}
	cx := make([]float64, 0, len(xs))
	cy := make([]float64, 0, len(ys))
	for i := range xs {
		if math.IsNaN(xs[i]) || math.IsNaN(ys[i]) {
			continue
		}
		cx = append(cx, xs[i])
		cy = append(cy, ys[i])
	}
	if len(cx) < 2 {
		return 0, ErrTooFew
	}
	return Pearson(Ranks(cx), Ranks(cy))
}

// ECDF is an empirical cumulative distribution function built from a
// sample. The zero value is unusable; construct with NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs, ignoring NaN values. It returns an error
// if no usable value exists.
func NewECDF(xs []float64) (*ECDF, error) {
	clean := make([]float64, 0, len(xs))
	for _, v := range xs {
		if !math.IsNaN(v) {
			clean = append(clean, v)
		}
	}
	if len(clean) == 0 {
		return nil, ErrEmpty
	}
	sort.Float64s(clean)
	return &ECDF{sorted: clean}, nil
}

// At returns the fraction of the sample that is <= x.
func (e *ECDF) At(x float64) float64 {
	// sort.SearchFloat64s returns the first index with sorted[i] >= x, so
	// we search for the first index strictly greater than x.
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(i) / float64(len(e.sorted))
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Points returns the ECDF as (x, F(x)) step points, one per distinct sample
// value, suitable for plotting the paper's CDF figures.
func (e *ECDF) Points() (xs, fs []float64) {
	n := len(e.sorted)
	for i := 0; i < n; {
		j := i
		// The slice is ascending, so "not greater" means equal to i.
		for j+1 < n && e.sorted[j+1] <= e.sorted[i] {
			j++
		}
		xs = append(xs, e.sorted[i])
		fs = append(fs, float64(j+1)/float64(n))
		i = j + 1
	}
	return xs, fs
}

// Quantile returns the type-7 interpolated q-quantile of the ECDF's sample.
func (e *ECDF) Quantile(q float64) float64 {
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	return quantileSorted(e.sorted, q)
}
