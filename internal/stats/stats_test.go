package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= eps
}

func TestMedianOdd(t *testing.T) {
	m, err := Median([]float64{5, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if m != 3 {
		t.Fatalf("median = %v, want 3", m)
	}
}

func TestMedianEven(t *testing.T) {
	m, err := Median([]float64{4, 1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if m != 2.5 {
		t.Fatalf("median = %v, want 2.5", m)
	}
}

func TestMedianSingle(t *testing.T) {
	m, err := Median([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	if m != 42 {
		t.Fatalf("median = %v, want 42", m)
	}
}

func TestMedianEmpty(t *testing.T) {
	if _, err := Median(nil); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{9, 2, 7, 4}
	want := []float64{9, 2, 7, 4}
	if _, err := Median(xs); err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if xs[i] != want[i] {
			t.Fatalf("Median mutated input at %d: %v", i, xs)
		}
	}
}

func TestMedianMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		got, err := Median(xs)
		if err != nil {
			t.Fatal(err)
		}
		ref := sortMedian(xs)
		if !almostEqual(got, ref, 1e-12) {
			t.Fatalf("trial %d: median=%v want %v (n=%d)", trial, got, ref, n)
		}
	}
}

func sortMedian(xs []float64) float64 {
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

func TestMedianWithDuplicates(t *testing.T) {
	m, err := Median([]float64{2, 2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if m != 2 {
		t.Fatalf("median = %v, want 2", m)
	}
}

func TestMedianPropertyBounds(t *testing.T) {
	// The median always lies between min and max.
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m, err := Median(xs)
		if err != nil {
			return false
		}
		lo, _ := Min(xs)
		hi, _ := Max(xs)
		return m >= lo && m <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMedianIgnoringNaN(t *testing.T) {
	m := MedianIgnoringNaN([]float64{math.NaN(), 1, math.NaN(), 3})
	if m != 2 {
		t.Fatalf("median = %v, want 2", m)
	}
	if !math.IsNaN(MedianIgnoringNaN([]float64{math.NaN()})) {
		t.Fatal("all-NaN input should yield NaN")
	}
	if !math.IsNaN(MedianIgnoringNaN(nil)) {
		t.Fatal("empty input should yield NaN")
	}
}

func TestMeanAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	mean, err := Mean(xs)
	if err != nil {
		t.Fatal(err)
	}
	if mean != 5 {
		t.Fatalf("mean = %v, want 5", mean)
	}
	sd, err := StdDev(xs)
	if err != nil {
		t.Fatal(err)
	}
	// Sample std dev with n-1: sqrt(32/7).
	if !almostEqual(sd, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("stddev = %v", sd)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	lo, err := Min(xs)
	if err != nil || lo != -1 {
		t.Fatalf("min = %v err=%v", lo, err)
	}
	hi, err := Max(xs)
	if err != nil || hi != 5 {
		t.Fatalf("max = %v err=%v", hi, err)
	}
}

func TestMinMaxIgnoringNaN(t *testing.T) {
	xs := []float64{math.NaN(), 2, math.NaN(), -7, 4}
	if v := MinIgnoringNaN(xs); v != -7 {
		t.Fatalf("min = %v, want -7", v)
	}
	if v := MaxIgnoringNaN(xs); v != 4 {
		t.Fatalf("max = %v, want 4", v)
	}
	if !math.IsNaN(MinIgnoringNaN([]float64{math.NaN()})) {
		t.Fatal("want NaN for all-NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {0.75, 3.25},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Fatal("want error for empty input")
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Fatal("want error for q<0")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Fatal("want error for q>1")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{math.NaN(), 1, 2, 3, 4, 5}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize([]float64{math.NaN()}); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestRanksNoTies(t *testing.T) {
	r := Ranks([]float64{30, 10, 20})
	want := []float64{3, 1, 2}
	for i := range r {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}

func TestRanksTies(t *testing.T) {
	r := Ranks([]float64{1, 2, 2, 3})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range r {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}

func TestRanksAllTied(t *testing.T) {
	r := Ranks([]float64{5, 5, 5})
	for _, v := range r {
		if v != 2 {
			t.Fatalf("ranks = %v, want all 2", r)
		}
	}
}

func TestRanksSumInvariant(t *testing.T) {
	// Ranks always sum to n(n+1)/2 regardless of ties.
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		n := len(xs)
		sum := 0.0
		for _, v := range Ranks(xs) {
			sum += v
		}
		return almostEqual(sum, float64(n*(n+1))/2, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Fatalf("r = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(xs, neg)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, -1, 1e-12) {
		t.Fatalf("r = %v, want -1", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Fatalf("err = %v", err)
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err != ErrTooFew {
		t.Fatalf("err = %v", err)
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Fatal("want error for zero-variance sample")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Spearman sees through any monotone transform: rho(x, exp(x)) = 1.
	xs := []float64{0.3, 1.5, 0.7, 2.2, 1.1}
	ys := make([]float64, len(xs))
	for i, v := range xs {
		ys[i] = math.Exp(v)
	}
	rho, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(rho, 1, 1e-12) {
		t.Fatalf("rho = %v, want 1", rho)
	}
}

func TestSpearmanAntitone(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{100, 50, 25, 12.5}
	rho, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(rho, -1, 1e-12) {
		t.Fatalf("rho = %v, want -1", rho)
	}
}

func TestSpearmanDropsNaNPairs(t *testing.T) {
	xs := []float64{1, math.NaN(), 3, 4}
	ys := []float64{10, 20, math.NaN(), 40}
	// Only pairs (1,10) and (4,40) survive.
	rho, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(rho, 1, 1e-12) {
		t.Fatalf("rho = %v, want 1", rho)
	}
}

func TestSpearmanTooFew(t *testing.T) {
	xs := []float64{1, math.NaN()}
	ys := []float64{2, 3}
	if _, err := Spearman(xs, ys); err != ErrTooFew {
		t.Fatalf("err = %v, want ErrTooFew", err)
	}
}

func TestSpearmanRangeInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(40)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		rho, err := Spearman(xs, ys)
		if err != nil {
			// Degenerate rank variance is possible but vanishingly
			// unlikely with continuous draws; treat as failure.
			t.Fatal(err)
		}
		if rho < -1-1e-9 || rho > 1+1e-9 {
			t.Fatalf("rho out of range: %v", rho)
		}
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 0.75}, {4, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.N() != 4 {
		t.Fatalf("N = %d", e.N())
	}
}

func TestECDFPoints(t *testing.T) {
	e, err := NewECDF([]float64{3, 1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	xs, fs := e.Points()
	wantX := []float64{1, 2, 3}
	wantF := []float64{0.25, 0.5, 1}
	if len(xs) != 3 {
		t.Fatalf("points = %v %v", xs, fs)
	}
	for i := range xs {
		if xs[i] != wantX[i] || !almostEqual(fs[i], wantF[i], 1e-12) {
			t.Fatalf("points = %v %v", xs, fs)
		}
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		e, err := NewECDF(xs)
		if err != nil {
			return false
		}
		prev := -1.0
		for _, x := range []float64{-1e9, -1, 0, 1, 1e9} {
			v := e.At(x)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestECDFQuantile(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if e.Quantile(0) != 1 || e.Quantile(1) != 5 || e.Quantile(0.5) != 3 {
		t.Fatalf("quantiles: %v %v %v", e.Quantile(0), e.Quantile(0.5), e.Quantile(1))
	}
}

func TestECDFEmpty(t *testing.T) {
	if _, err := NewECDF([]float64{math.NaN()}); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func BenchmarkMedian1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Median(xs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpearman1000(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 1000)
	ys := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Spearman(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

// TestMinMaxNaNPropagation pins the documented NaN contract: a NaN
// anywhere in the input makes Min and Max return NaN, independent of its
// position. The previous comparison-loop implementation returned NaN
// only when the NaN happened to sit at index 0.
func TestMinMaxNaNPropagation(t *testing.T) {
	inputs := [][]float64{
		{math.NaN(), 1, 2},
		{1, math.NaN(), 2},
		{1, 2, math.NaN()},
	}
	for _, xs := range inputs {
		mn, err := Min(xs)
		if err != nil || !math.IsNaN(mn) {
			t.Errorf("Min(%v) = %v, %v; want NaN, nil", xs, mn, err)
		}
		mx, err := Max(xs)
		if err != nil || !math.IsNaN(mx) {
			t.Errorf("Max(%v) = %v, %v; want NaN, nil", xs, mx, err)
		}
	}
}

// TestRanksNaN pins the NaN contract of Ranks: NaN inputs receive rank
// NaN, do not occupy a rank, and leave the remaining values ranked
// exactly as if the NaNs were absent.
func TestRanksNaN(t *testing.T) {
	got := Ranks([]float64{3, math.NaN(), 1, 2, math.NaN()})
	want := []float64{3, math.NaN(), 1, 2, math.NaN()}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !almostEqual(got[i], want[i], 0) {
			t.Errorf("rank[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestRanksAllNaN covers the degenerate all-NaN input.
func TestRanksAllNaN(t *testing.T) {
	for _, r := range Ranks([]float64{math.NaN(), math.NaN()}) {
		if !math.IsNaN(r) {
			t.Errorf("rank = %v, want NaN", r)
		}
	}
}
