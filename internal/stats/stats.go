// Package stats provides the order statistics, rank statistics, and
// correlation measures used throughout the last-mile congestion pipeline.
//
// The paper's methodology is deliberately built on robust statistics:
// medians per probe, medians across probe populations, and Spearman's rank
// correlation between delay and throughput. This package implements those
// primitives from scratch on float64 slices, with NaN-aware variants for
// series that contain gaps.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot produce a value from an
// empty (or all-NaN) input.
var ErrEmpty = errors.New("stats: empty input")

// Median returns the median of xs. It does not modify xs.
// It returns an error if xs is empty.
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	return medianInPlace(tmp), nil
}

// MedianInPlace returns the median of xs, reordering xs as a side effect.
// It returns an error if xs is empty. Use this in hot paths to avoid the
// copy made by Median.
func MedianInPlace(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	return medianInPlace(xs), nil
}

// medianInPlace computes the median by partial selection. xs must be
// non-empty.
func medianInPlace(xs []float64) float64 {
	n := len(xs)
	if n%2 == 1 {
		return selectKth(xs, n/2)
	}
	hi := selectKth(xs, n/2)
	// After selecting the n/2-th order statistic, all elements in
	// xs[:n/2] are <= hi; the lower middle is their maximum.
	lo := xs[0]
	for _, v := range xs[1 : n/2] {
		lo = max(lo, v)
	}
	return Midpoint(lo, hi)
}

// Midpoint returns (a+b)/2 without intermediate overflow for any finite
// a <= b: when the operands share a sign a-b cannot overflow, and when the
// signs differ a+b cannot. It is exported because every even-count median
// in the pipeline — sort-based, selection-based, or incremental — must
// combine the two middle order statistics with the same arithmetic to
// stay bit-for-bit comparable.
func Midpoint(a, b float64) float64 {
	if (a >= 0) == (b >= 0) {
		return a + (b-a)/2
	}
	return (a + b) / 2
}

// selectKth returns the k-th smallest element (0-indexed) of xs using
// Hoare's quickselect with median-of-three pivoting. xs is reordered.
func selectKth(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		p := partition(xs, lo, hi)
		switch {
		case k == p:
			return xs[k]
		case k < p:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
	return xs[k]
}

func partition(xs []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Median-of-three: order xs[lo], xs[mid], xs[hi].
	if xs[mid] < xs[lo] {
		xs[mid], xs[lo] = xs[lo], xs[mid]
	}
	if xs[hi] < xs[lo] {
		xs[hi], xs[lo] = xs[lo], xs[hi]
	}
	if xs[hi] < xs[mid] {
		xs[hi], xs[mid] = xs[mid], xs[hi]
	}
	pivot := xs[mid]
	xs[mid], xs[hi-1] = xs[hi-1], xs[mid]
	i := lo
	for j := lo; j < hi-1; j++ {
		if xs[j] < pivot {
			xs[i], xs[j] = xs[j], xs[i]
			i++
		}
	}
	xs[i], xs[hi-1] = xs[hi-1], xs[i]
	return i
}

// MedianIgnoringNaN returns the median of the non-NaN values in xs.
// It returns NaN (and no error) when xs contains no usable value, because
// gap bins are an expected, non-exceptional case in delay series.
func MedianIgnoringNaN(xs []float64) float64 {
	tmp := make([]float64, 0, len(xs))
	for _, v := range xs {
		if !math.IsNaN(v) {
			tmp = append(tmp, v)
		}
	}
	if len(tmp) == 0 {
		return math.NaN()
	}
	return medianInPlace(tmp)
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs)), nil
}

// MeanIgnoringNaN returns the mean of the non-NaN values of xs, or NaN if
// there are none.
func MeanIgnoringNaN(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range xs {
		if !math.IsNaN(v) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Min returns the minimum of xs. If xs contains a NaN the result is NaN,
// regardless of its position; use MinIgnoringNaN to skip gap values.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, v := range xs[1:] {
		m = min(m, v)
	}
	return m, nil
}

// Max returns the maximum of xs. If xs contains a NaN the result is NaN,
// regardless of its position; use MaxIgnoringNaN to skip gap values.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, v := range xs[1:] {
		m = max(m, v)
	}
	return m, nil
}

// MinIgnoringNaN returns the smallest non-NaN value of xs, or NaN if there
// is none.
func MinIgnoringNaN(xs []float64) float64 {
	m := math.NaN()
	for _, v := range xs {
		if math.IsNaN(v) {
			continue
		}
		if math.IsNaN(m) || v < m {
			m = v
		}
	}
	return m
}

// MaxIgnoringNaN returns the largest non-NaN value of xs, or NaN if there
// is none.
func MaxIgnoringNaN(xs []float64) float64 {
	m := math.NaN()
	for _, v := range xs {
		if math.IsNaN(v) {
			continue
		}
		if math.IsNaN(m) || v > m {
			m = v
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7 estimator, the numpy and R
// default). It does not modify xs.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile out of range [0,1]")
	}
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	sort.Float64s(tmp)
	return quantileSorted(tmp, q), nil
}

// quantileSorted computes the type-7 quantile of an ascending-sorted,
// non-empty slice.
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// StdDev returns the sample standard deviation (n-1 denominator) of xs.
func StdDev(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mean, _ := Mean(xs)
	ss := 0.0
	for _, v := range xs {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1)), nil
}

// Summary holds descriptive statistics for one sample.
type Summary struct {
	N      int
	Min    float64
	P25    float64
	Median float64
	P75    float64
	P90    float64
	P95    float64
	Max    float64
	Mean   float64
}

// Summarize computes a Summary of the non-NaN values of xs. It returns an
// error if no usable value exists.
func Summarize(xs []float64) (Summary, error) {
	clean := make([]float64, 0, len(xs))
	for _, v := range xs {
		if !math.IsNaN(v) {
			clean = append(clean, v)
		}
	}
	if len(clean) == 0 {
		return Summary{}, ErrEmpty
	}
	sort.Float64s(clean)
	mean, _ := Mean(clean)
	return Summary{
		N:      len(clean),
		Min:    clean[0],
		P25:    quantileSorted(clean, 0.25),
		Median: quantileSorted(clean, 0.5),
		P75:    quantileSorted(clean, 0.75),
		P90:    quantileSorted(clean, 0.90),
		P95:    quantileSorted(clean, 0.95),
		Max:    clean[len(clean)-1],
		Mean:   mean,
	}, nil
}
