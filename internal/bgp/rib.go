// Package bgp models the routing information the last-mile pipeline needs
// from BGP: a RIB mapping prefixes to origin Autonomous Systems, with
// longest-prefix match. The paper resolves each Atlas probe's public
// address against BGP data because some ISP edge addresses are not
// announced; this package provides that resolution step, loadable either
// from a scenario generator or from a textual "prefix origin" dump.
package bgp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"strings"

	"github.com/last-mile-congestion/lastmile/internal/ipnet"
)

// ASN is an Autonomous System number.
type ASN uint32

// String formats the ASN in the conventional "AS64500" form.
func (a ASN) String() string { return fmt.Sprintf("AS%d", uint32(a)) }

// Route is one RIB entry.
type Route struct {
	Prefix netip.Prefix
	Origin ASN
}

// RIB is a routing table mapping prefixes to origin ASes. The zero value
// is an empty table ready for use.
type RIB struct {
	trie ipnet.Trie[ASN]
	n    int
}

// ErrNoRoute is returned when no announced prefix covers an address.
var ErrNoRoute = errors.New("bgp: no route")

// Announce inserts a route. Announcing the same prefix twice replaces the
// origin, mirroring a newer announcement superseding an older one.
func (r *RIB) Announce(prefix netip.Prefix, origin ASN) error {
	before := r.trie.Len()
	if err := r.trie.Insert(prefix, origin); err != nil {
		return fmt.Errorf("bgp: announce %v: %w", prefix, err)
	}
	if r.trie.Len() > before {
		r.n++
	}
	return nil
}

// OriginOf returns the origin AS of the longest prefix covering addr.
func (r *RIB) OriginOf(addr netip.Addr) (ASN, error) {
	asn, err := r.trie.Lookup(addr)
	if err != nil {
		if errors.Is(err, ipnet.ErrNoMatch) {
			return 0, ErrNoRoute
		}
		return 0, err
	}
	return asn, nil
}

// RouteTo returns the covering prefix and origin for addr.
func (r *RIB) RouteTo(addr netip.Addr) (Route, error) {
	p, asn, err := r.trie.LookupPrefix(addr)
	if err != nil {
		if errors.Is(err, ipnet.ErrNoMatch) {
			return Route{}, ErrNoRoute
		}
		return Route{}, err
	}
	return Route{Prefix: p, Origin: asn}, nil
}

// Len returns the number of announced prefixes.
func (r *RIB) Len() int { return r.n }

// Routes returns all announced routes sorted by prefix string; intended
// for dumps and tests.
func (r *RIB) Routes() []Route {
	var routes []Route
	r.trie.Walk(func(p netip.Prefix, asn ASN) bool {
		routes = append(routes, Route{Prefix: p, Origin: asn})
		return true
	})
	sort.Slice(routes, func(i, j int) bool {
		return routes[i].Prefix.String() < routes[j].Prefix.String()
	})
	return routes
}

// WriteTo writes the RIB as "prefix origin" lines (e.g. "192.0.2.0/24
// 64500"), the same format ParseRIB reads.
func (r *RIB) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, rt := range r.Routes() {
		n, err := fmt.Fprintf(w, "%s %d\n", rt.Prefix, uint32(rt.Origin))
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ParseRIB reads "prefix origin" lines. Blank lines and lines starting
// with '#' are skipped. Parsing stops at the first malformed line with an
// error naming the line number.
func ParseRIB(r io.Reader) (*RIB, error) {
	rib := &RIB{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("bgp: line %d: want 'prefix origin', got %q", lineNo, line)
		}
		prefix, err := netip.ParsePrefix(fields[0])
		if err != nil {
			return nil, fmt.Errorf("bgp: line %d: %w", lineNo, err)
		}
		origin, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "AS"), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bgp: line %d: bad origin %q", lineNo, fields[1])
		}
		if err := rib.Announce(prefix, ASN(origin)); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rib, nil
}
