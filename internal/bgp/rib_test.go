package bgp

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
)

func TestASNString(t *testing.T) {
	if ASN(64500).String() != "AS64500" {
		t.Fatalf("got %s", ASN(64500).String())
	}
}

func TestAnnounceAndOrigin(t *testing.T) {
	var rib RIB
	if err := rib.Announce(netip.MustParsePrefix("192.0.2.0/24"), 64500); err != nil {
		t.Fatal(err)
	}
	asn, err := rib.OriginOf(netip.MustParseAddr("192.0.2.10"))
	if err != nil || asn != 64500 {
		t.Fatalf("origin = %v, %v", asn, err)
	}
	if _, err := rib.OriginOf(netip.MustParseAddr("198.51.100.1")); err != ErrNoRoute {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

func TestLongestMatchWins(t *testing.T) {
	var rib RIB
	rib.Announce(netip.MustParsePrefix("10.0.0.0/8"), 1)
	rib.Announce(netip.MustParsePrefix("10.128.0.0/9"), 2)
	asn, err := rib.OriginOf(netip.MustParseAddr("10.200.0.1"))
	if err != nil || asn != 2 {
		t.Fatalf("origin = %v, %v; want AS2", asn, err)
	}
	asn, err = rib.OriginOf(netip.MustParseAddr("10.1.0.1"))
	if err != nil || asn != 1 {
		t.Fatalf("origin = %v, %v; want AS1", asn, err)
	}
}

func TestRouteTo(t *testing.T) {
	var rib RIB
	rib.Announce(netip.MustParsePrefix("203.0.113.0/24"), 65001)
	rt, err := rib.RouteTo(netip.MustParseAddr("203.0.113.99"))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Prefix.String() != "203.0.113.0/24" || rt.Origin != 65001 {
		t.Fatalf("route = %+v", rt)
	}
	if _, err := rib.RouteTo(netip.MustParseAddr("8.8.8.8")); err != ErrNoRoute {
		t.Fatalf("err = %v", err)
	}
}

func TestReannounceReplaces(t *testing.T) {
	var rib RIB
	p := netip.MustParsePrefix("192.0.2.0/24")
	rib.Announce(p, 1)
	rib.Announce(p, 2)
	if rib.Len() != 1 {
		t.Fatalf("len = %d", rib.Len())
	}
	asn, _ := rib.OriginOf(netip.MustParseAddr("192.0.2.1"))
	if asn != 2 {
		t.Fatalf("origin = %v, want 2", asn)
	}
}

func TestRoutesSorted(t *testing.T) {
	var rib RIB
	rib.Announce(netip.MustParsePrefix("192.0.2.0/24"), 1)
	rib.Announce(netip.MustParsePrefix("10.0.0.0/8"), 2)
	rib.Announce(netip.MustParsePrefix("2001:db8::/32"), 3)
	routes := rib.Routes()
	if len(routes) != 3 {
		t.Fatalf("routes = %v", routes)
	}
	for i := 1; i < len(routes); i++ {
		if routes[i-1].Prefix.String() > routes[i].Prefix.String() {
			t.Fatalf("routes not sorted: %v", routes)
		}
	}
}

func TestRIBRoundTrip(t *testing.T) {
	var rib RIB
	rib.Announce(netip.MustParsePrefix("192.0.2.0/24"), 64500)
	rib.Announce(netip.MustParsePrefix("2001:db8::/32"), 64501)
	var buf bytes.Buffer
	if _, err := rib.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseRIB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != 2 {
		t.Fatalf("len = %d", parsed.Len())
	}
	asn, err := parsed.OriginOf(netip.MustParseAddr("2001:db8::5"))
	if err != nil || asn != 64501 {
		t.Fatalf("origin = %v, %v", asn, err)
	}
}

func TestParseRIBCommentsAndAS(t *testing.T) {
	input := `# comment line

192.0.2.0/24 AS64500
10.0.0.0/8 1299
`
	rib, err := ParseRIB(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if rib.Len() != 2 {
		t.Fatalf("len = %d", rib.Len())
	}
	asn, _ := rib.OriginOf(netip.MustParseAddr("192.0.2.1"))
	if asn != 64500 {
		t.Fatalf("origin = %v", asn)
	}
}

func TestParseRIBErrors(t *testing.T) {
	cases := []string{
		"192.0.2.0/24",            // missing origin
		"not-a-prefix 1",          // bad prefix
		"192.0.2.0/24 not-an-asn", // bad origin
		"192.0.2.0/24 1 extra",    // too many fields
	}
	for _, input := range cases {
		if _, err := ParseRIB(strings.NewReader(input)); err == nil {
			t.Errorf("input %q: want error", input)
		}
	}
}

func TestAnnounceInvalidPrefix(t *testing.T) {
	var rib RIB
	if err := rib.Announce(netip.Prefix{}, 1); err == nil {
		t.Fatal("want error")
	}
}
