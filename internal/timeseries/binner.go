package timeseries

import (
	"errors"
	"time"
)

// MedianBinner accumulates raw (time, value) samples into fixed-width bins
// and produces the per-bin median as a Series. The last-mile pipeline
// feeds it the 216 pairwise RTT samples each probe produces per 30-minute
// window (§2.1) and reads back a median-RTT series. Bins are
// IncrementalBin cells, so medians are maintained incrementally with the
// exact same arithmetic as the streaming engine — the batch result is a
// replay of the incremental one.
type MedianBinner struct {
	start time.Time
	step  time.Duration
	bins  []IncrementalBin
}

// NewMedianBinner creates a binner covering [start, end) with the given
// bin width.
func NewMedianBinner(start, end time.Time, step time.Duration) (*MedianBinner, error) {
	if step <= 0 {
		return nil, errors.New("timeseries: step must be positive")
	}
	if !start.Before(end) {
		return nil, errors.New("timeseries: start must precede end")
	}
	n := int(end.Sub(start) / step)
	if end.Sub(start)%step != 0 {
		n++
	}
	return &MedianBinner{
		start: start,
		step:  step,
		bins:  make([]IncrementalBin, n),
	}, nil
}

// indexOf returns the bin index for t, or -1 when t is out of range.
func (b *MedianBinner) indexOf(t time.Time) int {
	if t.Before(b.start) {
		return -1
	}
	i := int(t.Sub(b.start) / b.step)
	if i >= len(b.bins) {
		return -1
	}
	return i
}

// Add records one sample at time t. Samples outside the binner's range are
// silently dropped: built-in measurement streams routinely spill a few
// traceroutes past the period boundary and those are not errors.
func (b *MedianBinner) Add(t time.Time, v float64) {
	if i := b.indexOf(t); i >= 0 {
		b.bins[i].Add(v)
	}
}

// AddGroup records a group of samples originating from one measurement
// (one traceroute) at time t, incrementing the bin's group count used by
// the minimum-traceroutes sanity check.
func (b *MedianBinner) AddGroup(t time.Time, vs []float64) {
	if i := b.indexOf(t); i >= 0 {
		b.bins[i].AddGroup(vs)
	}
}

// Bin exposes bin i's IncrementalBin — the snapshot/restore surface:
// serialize each cell via IncrementalBin.Snapshot, rebuild with
// RestoreMedianBinner.
func (b *MedianBinner) Bin(i int) *IncrementalBin { return &b.bins[i] }

// Merge folds other — a binner with the identical axis, fed a different
// slice of the same sample stream — into b cell by cell. Medians are
// order statistics, so the merged binner's Series is bit-identical to
// one binner having seen the union of both streams.
func (b *MedianBinner) Merge(other *MedianBinner) error {
	if !b.start.Equal(other.start) || b.step != other.step || len(b.bins) != len(other.bins) {
		return errors.New("timeseries: cannot merge binners with different axes")
	}
	for i := range other.bins {
		b.bins[i].Merge(&other.bins[i])
	}
	return nil
}

// RestoreMedianBinner rebuilds a binner from restored cells. bins must
// hold one validated cell per bin (see RestoreBin); the slice is
// retained.
func RestoreMedianBinner(start time.Time, step time.Duration, bins []IncrementalBin) (*MedianBinner, error) {
	if step <= 0 {
		return nil, errors.New("timeseries: step must be positive")
	}
	if len(bins) == 0 {
		return nil, errors.New("timeseries: no bins to restore")
	}
	return &MedianBinner{start: start, step: step, bins: bins}, nil
}

// SampleCount returns the number of raw samples in bin i.
func (b *MedianBinner) SampleCount(i int) int { return b.bins[i].Len() }

// GroupCount returns the number of groups (traceroutes) recorded in bin i.
func (b *MedianBinner) GroupCount(i int) int { return b.bins[i].Groups() }

// Bins returns the number of bins.
func (b *MedianBinner) Bins() int { return len(b.bins) }

// Series computes the per-bin median. Bins with fewer than minGroups
// groups become gaps (NaN) — the paper's "discard traceroutes in bins that
// have less than 3 traceroutes" sanity check. Pass 0 to keep every
// non-empty bin.
func (b *MedianBinner) Series(minGroups int) *Series {
	out, err := NewSeries(b.start, b.step, len(b.bins))
	if err != nil {
		// Construction parameters were validated by NewMedianBinner.
		panic("timeseries: invalid binner state: " + err.Error())
	}
	for i := range b.bins {
		if b.bins[i].Groups() < minGroups {
			continue
		}
		if m, ok := b.bins[i].Median(); ok {
			out.Values[i] = m
		}
	}
	return out
}

// CountSeries returns the group count per bin as a float series, useful
// for operational dashboards of probe liveness.
func (b *MedianBinner) CountSeries() *Series {
	out, err := NewSeries(b.start, b.step, len(b.bins))
	if err != nil {
		panic("timeseries: invalid binner state: " + err.Error())
	}
	for i := range b.bins {
		out.Values[i] = float64(b.bins[i].Groups())
	}
	return out
}
