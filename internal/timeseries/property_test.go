package timeseries

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// mkFiniteSeries builds a series from arbitrary raw floats, mapping
// non-finite inputs to gaps and folding magnitudes into a physical delay
// range (|v| < 10^6 ms) — RTTs live there, and unconstrained doubles
// overflow any subtraction-based invariant.
func mkFiniteSeries(raw []float64) *Series {
	s, _ := NewSeries(time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC), 30*time.Minute, len(raw))
	for i, v := range raw {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			s.Values[i] = math.Mod(v, 1e6)
		}
	}
	return s
}

// Property: SubtractMin preserves gaps, pins the minimum at exactly zero,
// and preserves all pairwise differences between finite bins.
func TestSubtractMinProperties(t *testing.T) {
	f := func(raw []float64) bool {
		s := mkFiniteSeries(raw)
		qd, err := SubtractMin(s)
		if err != nil {
			// Only legal for all-gap series.
			return s.GapCount() == s.Len()
		}
		min := math.Inf(1)
		for i, v := range qd.Values {
			orig := s.Values[i]
			if math.IsNaN(orig) != math.IsNaN(v) {
				return false
			}
			if math.IsNaN(v) {
				continue
			}
			if v < 0 {
				return false
			}
			if v < min {
				min = v
			}
		}
		if min != 0 {
			return false
		}
		// Pairwise differences preserved.
		for i := range s.Values {
			for j := i + 1; j < s.Len(); j++ {
				a, b := s.Values[i], s.Values[j]
				if math.IsNaN(a) || math.IsNaN(b) {
					continue
				}
				if math.Abs((a-b)-(qd.Values[i]-qd.Values[j])) > 1e-9*(1+math.Abs(a-b)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the median aggregate of a population lies between the
// per-bin min and max across the population, and aggregating identical
// series is the identity.
func TestAggregateMedianProperties(t *testing.T) {
	f := func(raw []float64, copies uint8) bool {
		if len(raw) == 0 {
			return true
		}
		n := int(copies%5) + 1
		s := mkFiniteSeries(raw)
		pop := make([]*Series, n)
		for i := range pop {
			pop[i] = s.Clone()
		}
		agg, err := AggregateMedian(pop)
		if err != nil {
			return false
		}
		for i := range agg.Values {
			a, o := agg.Values[i], s.Values[i]
			if math.IsNaN(o) != math.IsNaN(a) {
				return false
			}
			if !math.IsNaN(a) && a != o {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: DayHourProfile of a strictly day-periodic series reproduces
// the daily template in every weekday slot that received data.
func TestDayHourProfilePeriodicProperty(t *testing.T) {
	f := func(seed uint8, days uint8) bool {
		nDays := int(days%10) + 7
		start := time.Date(2019, 9, 2, 0, 0, 0, 0, time.UTC) // Monday
		s, _ := NewSeries(start, 30*time.Minute, nDays*48)
		for i := range s.Values {
			slot := i % 48
			s.Values[i] = float64((slot*int(seed+1))%48) / 7
		}
		prof, err := DayHourProfile(s)
		if err != nil {
			return false
		}
		for i, v := range prof {
			if math.IsNaN(v) {
				continue
			}
			slot := i % 48
			want := float64((slot*int(seed+1))%48) / 7
			if math.Abs(v-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Window never yields values that differ from the parent
// series at the same timestamps.
func TestWindowConsistencyProperty(t *testing.T) {
	f := func(raw []float64, loFrac, hiFrac uint8) bool {
		if len(raw) < 2 {
			return true
		}
		s := mkFiniteSeries(raw)
		lo := int(loFrac) % s.Len()
		hi := lo + 1 + int(hiFrac)%(s.Len()-lo)
		w, err := s.Window(s.TimeAt(lo), s.TimeAt(0).Add(time.Duration(hi)*s.Step))
		if err != nil {
			return false
		}
		for i := 0; i < w.Len(); i++ {
			ts := w.TimeAt(i)
			j, ok := s.IndexOf(ts)
			if !ok {
				return false
			}
			a, b := w.Values[i], s.Values[j]
			if math.IsNaN(a) != math.IsNaN(b) {
				return false
			}
			if !math.IsNaN(a) && a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
