package timeseries

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// binFrom replays vs through a fresh bin, one group per value triple.
func binFrom(vs []float64) *IncrementalBin {
	b := &IncrementalBin{}
	for _, v := range vs {
		b.Add(v)
	}
	return b
}

// TestIncrementalBinMergeIsUnionReplay pins the exactness claim of
// Merge: the merged bin's every observable — median, sample count,
// group count — is bit-identical to one bin having replayed the union
// of both inputs, because the two-heap structure maintains an exact
// order statistic and order statistics are permutation-invariant.
func TestIncrementalBinMergeIsUnionReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	property := func(na, nb uint8) bool {
		xs := make([]float64, int(na)%64)
		ys := make([]float64, int(nb)%64)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		for i := range ys {
			ys[i] = rng.NormFloat64() * 100
		}
		a, b := binFrom(xs), binFrom(ys)
		a.groups, b.groups = 2, 5
		a.Merge(b)
		union := binFrom(append(append([]float64(nil), xs...), ys...))
		union.groups = 7
		ma, oka := a.Median()
		mu, oku := union.Median()
		return oka == oku &&
			math.Float64bits(ma) == math.Float64bits(mu) &&
			a.Len() == union.Len() && a.Groups() == union.Groups()
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalBinMergeLeavesOtherUnchanged(t *testing.T) {
	a, b := binFrom([]float64{1, 2, 3}), binFrom([]float64{4, 5})
	b.groups = 1
	a.Merge(b)
	if b.Len() != 2 || b.Groups() != 1 {
		t.Fatalf("other mutated by merge: len=%d groups=%d", b.Len(), b.Groups())
	}
	if m, _ := b.Median(); m != 4.5 {
		t.Fatalf("other median = %v, want 4.5", m)
	}
}

// TestIncrementalBinSnapshotRestoreContinue pins the restore contract:
// a bin rebuilt from snapshotted heap state behaves exactly like one
// that was never serialized, including under further Adds.
func TestIncrementalBinSnapshotRestoreContinue(t *testing.T) {
	orig := &IncrementalBin{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 101; i++ {
		orig.Add(rng.NormFloat64() * 50)
	}
	orig.groups = 13

	lo, hi, groups := orig.Snapshot()
	restored, err := RestoreBin(append([]float64(nil), lo...), append([]float64(nil), hi...), groups)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 57; i++ {
		v := rng.NormFloat64() * 50
		orig.Add(v)
		restored.Add(v)
	}
	mo, _ := orig.Median()
	mr, _ := restored.Median()
	if math.Float64bits(mo) != math.Float64bits(mr) {
		t.Fatalf("median diverged after restore: %v vs %v", mo, mr)
	}
	if orig.Len() != restored.Len() || orig.Groups() != restored.Groups() {
		t.Fatalf("state diverged: len %d/%d groups %d/%d", orig.Len(), restored.Len(), orig.Groups(), restored.Groups())
	}
}

func TestValidateHeapStateRejectsCorruption(t *testing.T) {
	cases := []struct {
		name   string
		lo, hi []float64
		want   error
	}{
		{"nan", []float64{math.NaN()}, nil, ErrNotFinite},
		{"inf", []float64{1}, []float64{math.Inf(1)}, ErrNotFinite},
		{"unbalanced", []float64{3, 2, 1}, nil, ErrHeapInvariant},
		{"lower-not-max-heap", []float64{1, 5}, []float64{7}, ErrHeapInvariant},
		{"upper-not-min-heap", []float64{1}, []float64{9, 2}, ErrHeapInvariant},
		{"overlap", []float64{5}, []float64{3}, ErrHeapInvariant},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateHeapState(tc.lo, tc.hi)
			if !errors.Is(err, tc.want) {
				t.Fatalf("ValidateHeapState = %v, want %v", err, tc.want)
			}
			if _, rerr := RestoreBin(tc.lo, tc.hi, 0); rerr == nil {
				t.Fatal("RestoreBin accepted corrupt heap state")
			}
		})
	}
	if err := ValidateHeapState([]float64{2, 1}, []float64{3}); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}
	if err := ValidateHeapState(nil, nil); err != nil {
		t.Fatalf("empty state rejected: %v", err)
	}
}

func TestRestoreBinRejectsNegativeGroups(t *testing.T) {
	if _, err := RestoreBin([]float64{1}, nil, -1); !errors.Is(err, ErrHeapInvariant) {
		t.Fatalf("err = %v, want ErrHeapInvariant", err)
	}
}

func TestMedianBinnerMergeIsUnionReplay(t *testing.T) {
	start := time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC)
	end := start.Add(6 * time.Hour)
	step := 30 * time.Minute
	mk := func() *MedianBinner {
		b, err := NewMedianBinner(start, end, step)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b, union := mk(), mk(), mk()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		ts := start.Add(time.Duration(rng.Intn(int(end.Sub(start)))))
		vs := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if i%2 == 0 {
			a.AddGroup(ts, vs)
		} else {
			b.AddGroup(ts, vs)
		}
		union.AddGroup(ts, vs)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got, want := a.Series(3), union.Series(3)
	for i := range want.Values {
		if math.Float64bits(got.Values[i]) != math.Float64bits(want.Values[i]) {
			t.Fatalf("bin %d: %v vs %v", i, got.Values[i], want.Values[i])
		}
		if a.GroupCount(i) != union.GroupCount(i) || a.SampleCount(i) != union.SampleCount(i) {
			t.Fatalf("bin %d counts diverged", i)
		}
	}
}

func TestMedianBinnerMergeRejectsAxisMismatch(t *testing.T) {
	start := time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC)
	a, _ := NewMedianBinner(start, start.Add(time.Hour), 30*time.Minute)
	b, _ := NewMedianBinner(start, start.Add(time.Hour), 15*time.Minute)
	if err := a.Merge(b); err == nil {
		t.Fatal("merge across differing axes must fail")
	}
	c, _ := NewMedianBinner(start.Add(time.Minute), start.Add(time.Hour), 30*time.Minute)
	if err := a.Merge(c); err == nil {
		t.Fatal("merge across differing starts must fail")
	}
}

func TestRestoreMedianBinnerRoundTrip(t *testing.T) {
	start := time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC)
	orig, err := NewMedianBinner(start, start.Add(2*time.Hour), 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	orig.AddGroup(start.Add(10*time.Minute), []float64{3, 1, 2})
	orig.AddGroup(start.Add(95*time.Minute), []float64{9, 8})

	cells := make([]IncrementalBin, orig.Bins())
	for i := range cells {
		lo, hi, groups := orig.Bin(i).Snapshot()
		restored, err := RestoreBin(append([]float64(nil), lo...), append([]float64(nil), hi...), groups)
		if err != nil {
			t.Fatal(err)
		}
		cells[i] = *restored
	}
	back, err := RestoreMedianBinner(start, 30*time.Minute, cells)
	if err != nil {
		t.Fatal(err)
	}
	got, want := back.Series(0), orig.Series(0)
	for i := range want.Values {
		if math.Float64bits(got.Values[i]) != math.Float64bits(want.Values[i]) {
			t.Fatalf("bin %d: %v vs %v", i, got.Values[i], want.Values[i])
		}
	}
	if _, err := RestoreMedianBinner(start, 0, cells); err == nil {
		t.Fatal("zero step must be rejected")
	}
	if _, err := RestoreMedianBinner(start, time.Minute, nil); err == nil {
		t.Fatal("empty bins must be rejected")
	}
}
