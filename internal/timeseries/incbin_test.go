package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/last-mile-congestion/lastmile/internal/stats"
)

// Property: the incremental two-heap median is bit-for-bit identical to
// the sort/selection-based stats.Median over the same multiset, for any
// finite sample set — the identity the batch=replay guarantee rests on.
func TestIncrementalBinMatchesStatsMedian(t *testing.T) {
	f := func(raw []float64) bool {
		var b IncrementalBin
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			v = math.Mod(v, 1e6) // physical delay range, like the pipeline
			vals = append(vals, v)
			b.Add(v)
		}
		got, ok := b.Median()
		want, err := stats.Median(vals)
		if err != nil {
			return !ok && b.Len() == 0
		}
		return ok && math.Float64bits(got) == math.Float64bits(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the incremental median is permutation-invariant — the
// foundation of the out-of-order ingestion guarantee.
func TestIncrementalBinPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 257)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 10
	}
	var ref IncrementalBin
	for _, v := range vals {
		ref.Add(v)
	}
	want, _ := ref.Median()
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(len(vals))
		var b IncrementalBin
		for _, i := range perm {
			b.Add(vals[i])
		}
		got, ok := b.Median()
		if !ok || math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d: median %v, want %v", trial, got, want)
		}
	}
}

func TestIncrementalBinRunningMedian(t *testing.T) {
	// Every prefix of the stream must report the prefix's exact median.
	stream := []float64{5, 1, 9, 3, 3, -2, 7, 0}
	var b IncrementalBin
	for i, v := range stream {
		b.Add(v)
		got, ok := b.Median()
		if !ok {
			t.Fatalf("prefix %d: no median", i+1)
		}
		want, err := stats.Median(stream[:i+1])
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("prefix %d: median %v, want %v", i+1, got, want)
		}
	}
	if b.Len() != len(stream) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(stream))
	}
}

func TestIncrementalBinGroups(t *testing.T) {
	var b IncrementalBin
	if _, ok := b.Median(); ok {
		t.Fatal("empty bin must not report a median")
	}
	b.AddGroup([]float64{1, 2, 3})
	b.AddGroup([]float64{4})
	b.AddGroup(nil) // a group with no samples still counts as a group
	if b.Groups() != 3 {
		t.Fatalf("Groups = %d, want 3", b.Groups())
	}
	if b.Len() != 4 {
		t.Fatalf("Len = %d, want 4", b.Len())
	}
}
