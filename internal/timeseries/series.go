// Package timeseries provides the regular time-series machinery of the
// last-mile pipeline: fixed-width time bins, per-bin median accumulation,
// minimum subtraction (turning RTT medians into queuing-delay estimates),
// and median aggregation across probe populations. Gaps are represented as
// NaN so that downstream statistics can skip them explicitly.
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/stats"
)

// Series is a regularly sampled time series. Values[i] covers the
// half-open interval [Start + i*Step, Start + (i+1)*Step). NaN marks a gap.
type Series struct {
	Start  time.Time
	Step   time.Duration
	Values []float64
}

// NewSeries returns a Series of n gap (NaN) values.
func NewSeries(start time.Time, step time.Duration, n int) (*Series, error) {
	if step <= 0 {
		return nil, errors.New("timeseries: step must be positive")
	}
	if n < 0 {
		return nil, errors.New("timeseries: negative length")
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.NaN()
	}
	return &Series{Start: start, Step: step, Values: vals}, nil
}

// Len returns the number of bins.
func (s *Series) Len() int { return len(s.Values) }

// End returns the exclusive end time of the series.
func (s *Series) End() time.Time {
	return s.Start.Add(time.Duration(len(s.Values)) * s.Step)
}

// TimeAt returns the start time of bin i.
func (s *Series) TimeAt(i int) time.Time {
	return s.Start.Add(time.Duration(i) * s.Step)
}

// IndexOf returns the bin index covering t, or false when t is outside the
// series.
func (s *Series) IndexOf(t time.Time) (int, bool) {
	if t.Before(s.Start) {
		return 0, false
	}
	i := int(t.Sub(s.Start) / s.Step)
	if i >= len(s.Values) {
		return 0, false
	}
	return i, true
}

// SampleRatePerHour returns the number of samples per hour, the unit the
// classifier's frequency axis is expressed in (cycles per hour).
func (s *Series) SampleRatePerHour() float64 {
	return float64(time.Hour) / float64(s.Step)
}

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	vals := make([]float64, len(s.Values))
	copy(vals, s.Values)
	return &Series{Start: s.Start, Step: s.Step, Values: vals}
}

// GapCount returns the number of NaN bins.
func (s *Series) GapCount() int {
	n := 0
	for _, v := range s.Values {
		if math.IsNaN(v) {
			n++
		}
	}
	return n
}

// Window returns the sub-series covering [from, to). Both bounds are
// clamped to the series extent; an empty result is an error.
func (s *Series) Window(from, to time.Time) (*Series, error) {
	if from.Before(s.Start) {
		from = s.Start
	}
	if to.After(s.End()) {
		to = s.End()
	}
	if !from.Before(to) {
		return nil, errors.New("timeseries: empty window")
	}
	lo := int(from.Sub(s.Start) / s.Step)
	hi := int(to.Sub(s.Start) / s.Step)
	if to.Sub(s.Start)%s.Step != 0 {
		hi++
	}
	if hi > len(s.Values) {
		hi = len(s.Values)
	}
	vals := make([]float64, hi-lo)
	copy(vals, s.Values[lo:hi])
	return &Series{Start: s.TimeAt(lo), Step: s.Step, Values: vals}, nil
}

// aligned reports whether two series share start, step, and length.
func aligned(a, b *Series) bool {
	return a.Start.Equal(b.Start) && a.Step == b.Step && len(a.Values) == len(b.Values)
}

// SubtractMin returns a copy of s with the minimum non-NaN value
// subtracted from every bin, which converts an RTT-median series into the
// paper's queuing-delay estimate (lowest point pinned at zero). The
// minimum is computed per call, i.e. per measurement period, exactly as
// §2.1 prescribes. An all-gap series is an error.
func SubtractMin(s *Series) (*Series, error) {
	min := stats.MinIgnoringNaN(s.Values)
	if math.IsNaN(min) {
		return nil, errors.New("timeseries: series has no finite value")
	}
	out := s.Clone()
	for i, v := range out.Values {
		if !math.IsNaN(v) {
			out.Values[i] = v - min
		}
	}
	return out, nil
}

// AggregateMedian combines a population of aligned series into one series
// whose bins hold the median across the population, skipping gaps. Bins in
// which every series has a gap stay NaN. This is the paper's population
// aggregation: "large fluctuations reveal times when the majority of the
// probes experience high latency."
func AggregateMedian(series []*Series) (*Series, error) {
	return aggregate(series, stats.MedianIgnoringNaN)
}

// AggregateMean is the non-robust variant of AggregateMedian, used by the
// ablation benchmarks to show why the paper chose the median.
func AggregateMean(series []*Series) (*Series, error) {
	return aggregate(series, stats.MeanIgnoringNaN)
}

func aggregate(series []*Series, combine func([]float64) float64) (*Series, error) {
	if len(series) == 0 {
		return nil, errors.New("timeseries: no series to aggregate")
	}
	first := series[0]
	for i, s := range series[1:] {
		if !aligned(first, s) {
			return nil, fmt.Errorf("timeseries: series %d is not aligned with series 0", i+1)
		}
	}
	out, err := NewSeries(first.Start, first.Step, first.Len())
	if err != nil {
		return nil, err
	}
	column := make([]float64, len(series))
	for bin := 0; bin < first.Len(); bin++ {
		for j, s := range series {
			column[j] = s.Values[bin]
		}
		out.Values[bin] = combine(column)
	}
	return out, nil
}

// DayHourProfile folds the series onto a weekly template: the returned
// slice has one entry per bin offset within a week starting on Monday
// 00:00 UTC, each holding the mean of all values landing on that offset.
// The paper's Fig. 1 displays exactly this "one week" view of 15-day
// periods. The series step must divide 24h.
func DayHourProfile(s *Series) ([]float64, error) {
	if time.Duration(24)*time.Hour%s.Step != 0 {
		return nil, errors.New("timeseries: step does not divide a day")
	}
	perWeek := int(7 * 24 * time.Hour / s.Step)
	sums := make([]float64, perWeek)
	counts := make([]int, perWeek)
	for i, v := range s.Values {
		if math.IsNaN(v) {
			continue
		}
		t := s.TimeAt(i).UTC()
		// Weekday offset with Monday = 0.
		wd := (int(t.Weekday()) + 6) % 7
		dayOffset := time.Duration(t.Hour())*time.Hour +
			time.Duration(t.Minute())*time.Minute +
			time.Duration(t.Second())*time.Second
		slot := wd*int(24*time.Hour/s.Step) + int(dayOffset/s.Step)
		sums[slot] += v
		counts[slot]++
	}
	out := make([]float64, perWeek)
	for i := range out {
		if counts[i] == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = sums[i] / float64(counts[i])
		}
	}
	return out, nil
}
