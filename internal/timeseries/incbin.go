package timeseries

import "github.com/last-mile-congestion/lastmile/internal/stats"

// IncrementalBin accumulates the raw last-mile samples of one (probe,
// bin) cell and maintains their exact median incrementally: a max-heap
// of the lower half and a min-heap of the upper half (the classic
// two-heap order statistic), rebalanced on every insert so the median
// is O(1) to read and O(log n) to update.
//
// The median is bit-for-bit identical to stats.Median over the same
// multiset: order statistics are permutation-invariant, and the
// even-count case combines the two middle elements with the shared
// stats.Midpoint arithmetic. That identity is what lets the streaming
// monitor and the batch pipeline share one binning engine — a batch run
// is literally a replay of the incremental one.
//
// Samples must be finite: NaN fails every ordering comparison and would
// corrupt the heap invariant. The last-mile estimator only emits finite
// values (it drops NaN/Inf/non-positive RTTs before differencing).
type IncrementalBin struct {
	// lo is a max-heap of the lower half, hi a min-heap of the upper
	// half; len(lo) == len(hi) or len(lo) == len(hi)+1.
	lo, hi []float64
	// groups counts distinct measurement groups (traceroutes), the unit
	// of the paper's "fewer than 3 traceroutes" discard rule.
	groups int
}

// Add inserts one sample.
//
//lmvet:hotpath
func (b *IncrementalBin) Add(v float64) {
	if len(b.lo) == 0 || v <= b.lo[0] {
		b.lo = heapPush(b.lo, v, lessMax)
	} else {
		b.hi = heapPush(b.hi, v, lessMin)
	}
	// Rebalance so the halves differ by at most one, lower half larger.
	if len(b.lo) > len(b.hi)+1 {
		var top float64
		b.lo, top = heapPop(b.lo, lessMax)
		b.hi = heapPush(b.hi, top, lessMin)
	} else if len(b.hi) > len(b.lo) {
		var top float64
		b.hi, top = heapPop(b.hi, lessMin)
		b.lo = heapPush(b.lo, top, lessMax)
	}
}

// AddGroup inserts one measurement group (one traceroute's samples) and
// increments the group count.
//
//lmvet:hotpath
func (b *IncrementalBin) AddGroup(vs []float64) {
	for _, v := range vs {
		b.Add(v)
	}
	b.groups++
}

// Len returns the number of samples.
func (b *IncrementalBin) Len() int { return len(b.lo) + len(b.hi) }

// Groups returns the number of measurement groups recorded via AddGroup.
func (b *IncrementalBin) Groups() int { return b.groups }

// Median returns the current exact median; ok is false for an empty bin.
func (b *IncrementalBin) Median() (v float64, ok bool) {
	switch {
	case len(b.lo) == 0:
		return 0, false
	case len(b.lo) > len(b.hi):
		return b.lo[0], true
	default:
		return stats.Midpoint(b.lo[0], b.hi[0]), true
	}
}

// lessMax orders a max-heap (parent >= children), lessMin a min-heap.
func lessMax(a, b float64) bool { return a > b }
func lessMin(a, b float64) bool { return a < b }

// heapPush appends v and sifts it up under the given ordering.
func heapPush(h []float64, v float64, less func(a, b float64) bool) []float64 {
	h = append(h, v) //lmvet:ignore allocguard heap backing arrays grow by amortised doubling; steady-state inserts reuse capacity
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

// heapPop removes and returns the root under the given ordering.
func heapPop(h []float64, less func(a, b float64) bool) ([]float64, float64) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h) && less(h[l], h[best]) {
			best = l
		}
		if r < len(h) && less(h[r], h[best]) {
			best = r
		}
		if best == i {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	return h, top
}
