package timeseries

import (
	"errors"
	"fmt"
	"math"

	"github.com/last-mile-congestion/lastmile/internal/stats"
)

// IncrementalBin accumulates the raw last-mile samples of one (probe,
// bin) cell and maintains their exact median incrementally: a max-heap
// of the lower half and a min-heap of the upper half (the classic
// two-heap order statistic), rebalanced on every insert so the median
// is O(1) to read and O(log n) to update.
//
// The median is bit-for-bit identical to stats.Median over the same
// multiset: order statistics are permutation-invariant, and the
// even-count case combines the two middle elements with the shared
// stats.Midpoint arithmetic. That identity is what lets the streaming
// monitor and the batch pipeline share one binning engine — a batch run
// is literally a replay of the incremental one.
//
// Samples must be finite: NaN fails every ordering comparison and would
// corrupt the heap invariant. The last-mile estimator only emits finite
// values (it drops NaN/Inf/non-positive RTTs before differencing).
type IncrementalBin struct {
	// lo is a max-heap of the lower half, hi a min-heap of the upper
	// half; len(lo) == len(hi) or len(lo) == len(hi)+1.
	lo, hi []float64
	// groups counts distinct measurement groups (traceroutes), the unit
	// of the paper's "fewer than 3 traceroutes" discard rule.
	groups int
}

// Add inserts one sample.
//
//lmvet:hotpath
func (b *IncrementalBin) Add(v float64) {
	if len(b.lo) == 0 || v <= b.lo[0] {
		b.lo = heapPush(b.lo, v, lessMax)
	} else {
		b.hi = heapPush(b.hi, v, lessMin)
	}
	// Rebalance so the halves differ by at most one, lower half larger.
	if len(b.lo) > len(b.hi)+1 {
		var top float64
		b.lo, top = heapPop(b.lo, lessMax)
		b.hi = heapPush(b.hi, top, lessMin)
	} else if len(b.hi) > len(b.lo) {
		var top float64
		b.hi, top = heapPop(b.hi, lessMin)
		b.lo = heapPush(b.lo, top, lessMax)
	}
}

// AddGroup inserts one measurement group (one traceroute's samples) and
// increments the group count.
//
//lmvet:hotpath
func (b *IncrementalBin) AddGroup(vs []float64) {
	for _, v := range vs {
		b.Add(v)
	}
	b.groups++
}

// Len returns the number of samples.
func (b *IncrementalBin) Len() int { return len(b.lo) + len(b.hi) }

// Groups returns the number of measurement groups recorded via AddGroup.
func (b *IncrementalBin) Groups() int { return b.groups }

// Median returns the current exact median; ok is false for an empty bin.
func (b *IncrementalBin) Median() (v float64, ok bool) {
	switch {
	case len(b.lo) == 0:
		return 0, false
	case len(b.lo) > len(b.hi):
		return b.lo[0], true
	default:
		return stats.Midpoint(b.lo[0], b.hi[0]), true
	}
}

// Snapshot exposes the bin's serializable state: the two heap backing
// slices (lower-half max-heap, upper-half min-heap) and the group
// count. The returned slices alias the bin's storage and are valid only
// until the next Add/AddGroup/Merge — snapshotting callers must encode
// or copy them before mutating the bin, the same valid-until-next-call
// contract the wire scanners use.
func (b *IncrementalBin) Snapshot() (lo, hi []float64, groups int) {
	return b.lo, b.hi, b.groups
}

// Merge folds other's samples and group count into b. The median of the
// merged bin is bit-identical to replaying the union of both bins'
// inputs through one bin in any order: the two-heap structure maintains
// an exact order statistic, which is permutation-invariant, and the
// even-count midpoint uses the shared stats.Midpoint arithmetic either
// way. Only the internal heap layout depends on merge order, never an
// observable value — TestIncrementalBinMergeIsUnionReplay pins this.
// other is unchanged.
func (b *IncrementalBin) Merge(other *IncrementalBin) {
	for _, v := range other.lo {
		b.Add(v)
	}
	for _, v := range other.hi {
		b.Add(v)
	}
	b.groups += other.groups
}

// Heap-state validation errors returned by ValidateHeapState and
// RestoreBin. Both are wrapped with position context; match with
// errors.Is.
var (
	// ErrHeapInvariant marks heap-state slices that violate the two-heap
	// structure: unbalanced halves, a broken heap ordering, or an upper
	// half overlapping the lower one.
	ErrHeapInvariant = errors.New("timeseries: two-heap invariant violated")
	// ErrNotFinite marks a NaN or infinite sample, which the bin's
	// ordering comparisons cannot handle.
	ErrNotFinite = errors.New("timeseries: non-finite sample in heap state")
)

// ValidateHeapState checks that (lo, hi) is a well-formed two-heap
// median state: every sample finite, len(lo) == len(hi) or len(hi)+1,
// lo a max-heap, hi a min-heap, and max(lo) <= min(hi). It is the
// shared validation behind RestoreBin and the wire snapshot decoder, so
// a corrupted or adversarial snapshot can never smuggle a broken heap
// into a live engine.
func ValidateHeapState(lo, hi []float64) error {
	for _, h := range [2][]float64{lo, hi} {
		for i, v := range h {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: sample %d is %v", ErrNotFinite, i, v)
			}
		}
	}
	if len(lo) != len(hi) && len(lo) != len(hi)+1 {
		return fmt.Errorf("%w: halves of %d and %d samples", ErrHeapInvariant, len(lo), len(hi))
	}
	if err := validateHeap(lo, lessMax); err != nil {
		return fmt.Errorf("lower half: %w", err)
	}
	if err := validateHeap(hi, lessMin); err != nil {
		return fmt.Errorf("upper half: %w", err)
	}
	if len(lo) > 0 && len(hi) > 0 && lo[0] > hi[0] {
		return fmt.Errorf("%w: lower-half max %v exceeds upper-half min %v", ErrHeapInvariant, lo[0], hi[0])
	}
	return nil
}

// validateHeap checks the parent-dominates-children ordering.
func validateHeap(h []float64, less func(a, b float64) bool) error {
	for i := 1; i < len(h); i++ {
		if parent := (i - 1) / 2; less(h[i], h[parent]) {
			return fmt.Errorf("%w: element %d out of order", ErrHeapInvariant, i)
		}
	}
	return nil
}

// RestoreBin reconstructs an IncrementalBin from snapshotted heap
// state, re-validating the two-heap invariants first — restoring never
// trusts its input, so a bin rebuilt from a snapshot behaves exactly
// like one built by Add calls. The slices are retained by the bin;
// callers must not mutate them afterwards.
func RestoreBin(lo, hi []float64, groups int) (*IncrementalBin, error) {
	if err := ValidateHeapState(lo, hi); err != nil {
		return nil, err
	}
	if groups < 0 {
		return nil, fmt.Errorf("%w: negative group count %d", ErrHeapInvariant, groups)
	}
	return &IncrementalBin{lo: lo, hi: hi, groups: groups}, nil
}

// lessMax orders a max-heap (parent >= children), lessMin a min-heap.
func lessMax(a, b float64) bool { return a > b }
func lessMin(a, b float64) bool { return a < b }

// heapPush appends v and sifts it up under the given ordering.
func heapPush(h []float64, v float64, less func(a, b float64) bool) []float64 {
	h = append(h, v) //lmvet:ignore allocguard heap backing arrays grow by amortised doubling; steady-state inserts reuse capacity
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

// heapPop removes and returns the root under the given ordering.
func heapPop(h []float64, less func(a, b float64) bool) ([]float64, float64) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h) && less(h[l], h[best]) {
			best = l
		}
		if r < len(h) && less(h[r], h[best]) {
			best = r
		}
		if best == i {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	return h, top
}
