package timeseries

import (
	"math"
	"testing"
	"time"
)

var t0 = time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)

func mustSeries(t *testing.T, start time.Time, step time.Duration, vals []float64) *Series {
	t.Helper()
	s, err := NewSeries(start, step, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	copy(s.Values, vals)
	return s
}

func TestNewSeries(t *testing.T) {
	s, err := NewSeries(t0, 30*time.Minute, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d", s.Len())
	}
	for i, v := range s.Values {
		if !math.IsNaN(v) {
			t.Fatalf("value %d = %v, want NaN", i, v)
		}
	}
	if s.GapCount() != 4 {
		t.Fatalf("gaps = %d", s.GapCount())
	}
}

func TestNewSeriesErrors(t *testing.T) {
	if _, err := NewSeries(t0, 0, 4); err == nil {
		t.Fatal("want error for zero step")
	}
	if _, err := NewSeries(t0, time.Minute, -1); err == nil {
		t.Fatal("want error for negative length")
	}
}

func TestTimeAtAndIndexOf(t *testing.T) {
	s, _ := NewSeries(t0, 30*time.Minute, 48)
	if !s.TimeAt(2).Equal(t0.Add(time.Hour)) {
		t.Fatalf("TimeAt(2) = %v", s.TimeAt(2))
	}
	if !s.End().Equal(t0.Add(24 * time.Hour)) {
		t.Fatalf("End = %v", s.End())
	}
	i, ok := s.IndexOf(t0.Add(45 * time.Minute))
	if !ok || i != 1 {
		t.Fatalf("IndexOf = %d, %v", i, ok)
	}
	if _, ok := s.IndexOf(t0.Add(-time.Minute)); ok {
		t.Fatal("before start should not resolve")
	}
	if _, ok := s.IndexOf(t0.Add(24 * time.Hour)); ok {
		t.Fatal("end is exclusive")
	}
}

func TestSampleRatePerHour(t *testing.T) {
	s, _ := NewSeries(t0, 30*time.Minute, 1)
	if s.SampleRatePerHour() != 2 {
		t.Fatalf("rate = %v", s.SampleRatePerHour())
	}
	s15, _ := NewSeries(t0, 15*time.Minute, 1)
	if s15.SampleRatePerHour() != 4 {
		t.Fatalf("rate = %v", s15.SampleRatePerHour())
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := mustSeries(t, t0, time.Hour, []float64{1, 2})
	c := s.Clone()
	c.Values[0] = 99
	if s.Values[0] != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestWindow(t *testing.T) {
	s := mustSeries(t, t0, time.Hour, []float64{0, 1, 2, 3, 4, 5})
	w, err := s.Window(t0.Add(2*time.Hour), t0.Add(4*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 2 || w.Values[0] != 2 || w.Values[1] != 3 {
		t.Fatalf("window = %+v", w.Values)
	}
	if !w.Start.Equal(t0.Add(2 * time.Hour)) {
		t.Fatalf("window start = %v", w.Start)
	}
}

func TestWindowClamps(t *testing.T) {
	s := mustSeries(t, t0, time.Hour, []float64{0, 1, 2})
	w, err := s.Window(t0.Add(-time.Hour), t0.Add(100*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 3 {
		t.Fatalf("len = %d", w.Len())
	}
}

func TestWindowEmpty(t *testing.T) {
	s := mustSeries(t, t0, time.Hour, []float64{0, 1})
	if _, err := s.Window(t0.Add(5*time.Hour), t0.Add(6*time.Hour)); err == nil {
		t.Fatal("want error for empty window")
	}
}

func TestSubtractMin(t *testing.T) {
	s := mustSeries(t, t0, time.Hour, []float64{5, math.NaN(), 3, 7})
	q, err := SubtractMin(s)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, math.NaN(), 0, 4}
	for i := range want {
		if math.IsNaN(want[i]) != math.IsNaN(q.Values[i]) {
			t.Fatalf("bin %d: %v", i, q.Values)
		}
		if !math.IsNaN(want[i]) && q.Values[i] != want[i] {
			t.Fatalf("bin %d = %v, want %v", i, q.Values[i], want[i])
		}
	}
	// Original untouched.
	if s.Values[0] != 5 {
		t.Fatal("SubtractMin mutated input")
	}
}

func TestSubtractMinAllGaps(t *testing.T) {
	s, _ := NewSeries(t0, time.Hour, 3)
	if _, err := SubtractMin(s); err == nil {
		t.Fatal("want error for all-gap series")
	}
}

func TestSubtractMinHasZero(t *testing.T) {
	// After subtraction, the minimum of the series is exactly zero.
	s := mustSeries(t, t0, time.Hour, []float64{0.8, 1.1, 0.9, 2.0})
	q, err := SubtractMin(s)
	if err != nil {
		t.Fatal(err)
	}
	min := math.Inf(1)
	for _, v := range q.Values {
		if v < min {
			min = v
		}
	}
	if min != 0 {
		t.Fatalf("min = %v, want 0", min)
	}
}

func TestAggregateMedian(t *testing.T) {
	a := mustSeries(t, t0, time.Hour, []float64{1, 5, math.NaN()})
	b := mustSeries(t, t0, time.Hour, []float64{3, math.NaN(), math.NaN()})
	c := mustSeries(t, t0, time.Hour, []float64{2, 7, math.NaN()})
	agg, err := AggregateMedian([]*Series{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Values[0] != 2 {
		t.Fatalf("bin 0 = %v, want 2", agg.Values[0])
	}
	if agg.Values[1] != 6 {
		t.Fatalf("bin 1 = %v, want 6 (median of 5,7)", agg.Values[1])
	}
	if !math.IsNaN(agg.Values[2]) {
		t.Fatalf("bin 2 = %v, want NaN", agg.Values[2])
	}
}

func TestAggregateMedianRobustToOutlierProbe(t *testing.T) {
	// One pathological probe must not move the aggregate: this is the
	// reason the paper uses the median.
	population := make([]*Series, 7)
	for i := range population {
		population[i] = mustSeries(t, t0, time.Hour, []float64{1, 1, 1})
	}
	population[0] = mustSeries(t, t0, time.Hour, []float64{500, 500, 500})
	agg, err := AggregateMedian(population)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range agg.Values {
		if v != 1 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
	mean, err := AggregateMean(population)
	if err != nil {
		t.Fatal(err)
	}
	if mean.Values[0] <= 10 {
		t.Fatalf("mean aggregate should be polluted, got %v", mean.Values[0])
	}
}

func TestAggregateErrors(t *testing.T) {
	if _, err := AggregateMedian(nil); err == nil {
		t.Fatal("want error for empty population")
	}
	a := mustSeries(t, t0, time.Hour, []float64{1})
	b := mustSeries(t, t0.Add(time.Hour), time.Hour, []float64{1})
	if _, err := AggregateMedian([]*Series{a, b}); err == nil {
		t.Fatal("want error for misaligned series")
	}
	c := mustSeries(t, t0, 30*time.Minute, []float64{1})
	if _, err := AggregateMedian([]*Series{a, c}); err == nil {
		t.Fatal("want error for different steps")
	}
}

func TestDayHourProfile(t *testing.T) {
	// Two weeks of hourly data with value = hour of day; the profile must
	// recover hour-of-day exactly for every weekday slot.
	start := time.Date(2019, 9, 2, 0, 0, 0, 0, time.UTC) // a Monday
	n := 14 * 24
	s, _ := NewSeries(start, time.Hour, n)
	for i := range s.Values {
		s.Values[i] = float64(s.TimeAt(i).Hour())
	}
	prof, err := DayHourProfile(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) != 7*24 {
		t.Fatalf("profile length = %d", len(prof))
	}
	for slot, v := range prof {
		want := float64(slot % 24)
		if v != want {
			t.Fatalf("slot %d = %v, want %v", slot, v, want)
		}
	}
}

func TestDayHourProfileMondayFirst(t *testing.T) {
	// A single sample on a Wednesday 06:00 must land in slot
	// 2*24 + 6 for an hourly profile (Monday = day 0).
	start := time.Date(2019, 9, 4, 6, 0, 0, 0, time.UTC) // Wednesday
	s, _ := NewSeries(start, time.Hour, 1)
	s.Values[0] = 42
	prof, err := DayHourProfile(s)
	if err != nil {
		t.Fatal(err)
	}
	slot := 2*24 + 6
	if prof[slot] != 42 {
		t.Fatalf("slot %d = %v, want 42", slot, prof[slot])
	}
	for i, v := range prof {
		if i != slot && !math.IsNaN(v) {
			t.Fatalf("slot %d = %v, want NaN", i, v)
		}
	}
}

func TestDayHourProfileBadStep(t *testing.T) {
	s, _ := NewSeries(t0, 7*time.Hour, 10)
	if _, err := DayHourProfile(s); err == nil {
		t.Fatal("want error for step not dividing a day")
	}
}

func TestMedianBinner(t *testing.T) {
	b, err := NewMedianBinner(t0, t0.Add(time.Hour), 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if b.Bins() != 2 {
		t.Fatalf("bins = %d", b.Bins())
	}
	b.Add(t0, 1)
	b.Add(t0.Add(time.Minute), 3)
	b.Add(t0.Add(31*time.Minute), 10)
	s := b.Series(0)
	if s.Values[0] != 2 || s.Values[1] != 10 {
		t.Fatalf("series = %v", s.Values)
	}
}

func TestMedianBinnerMinGroups(t *testing.T) {
	b, _ := NewMedianBinner(t0, t0.Add(time.Hour), 30*time.Minute)
	// Bin 0 gets 3 traceroute groups, bin 1 only 2.
	for i := 0; i < 3; i++ {
		b.AddGroup(t0, []float64{1, 2, 3})
	}
	for i := 0; i < 2; i++ {
		b.AddGroup(t0.Add(30*time.Minute), []float64{5})
	}
	s := b.Series(3)
	if s.Values[0] != 2 {
		t.Fatalf("bin 0 = %v", s.Values[0])
	}
	if !math.IsNaN(s.Values[1]) {
		t.Fatalf("bin 1 = %v, want NaN (only 2 groups)", s.Values[1])
	}
	if b.GroupCount(0) != 3 || b.GroupCount(1) != 2 {
		t.Fatalf("groups = %d, %d", b.GroupCount(0), b.GroupCount(1))
	}
	if b.SampleCount(0) != 9 {
		t.Fatalf("samples = %d", b.SampleCount(0))
	}
}

func TestMedianBinnerDropsOutOfRange(t *testing.T) {
	b, _ := NewMedianBinner(t0, t0.Add(time.Hour), 30*time.Minute)
	b.Add(t0.Add(-time.Minute), 1)
	b.Add(t0.Add(2*time.Hour), 1)
	b.AddGroup(t0.Add(2*time.Hour), []float64{1})
	s := b.Series(0)
	if !math.IsNaN(s.Values[0]) || !math.IsNaN(s.Values[1]) {
		t.Fatalf("series = %v, want all gaps", s.Values)
	}
}

func TestMedianBinnerErrors(t *testing.T) {
	if _, err := NewMedianBinner(t0, t0, time.Minute); err == nil {
		t.Fatal("want error for empty range")
	}
	if _, err := NewMedianBinner(t0, t0.Add(time.Hour), 0); err == nil {
		t.Fatal("want error for zero step")
	}
}

func TestMedianBinnerPartialLastBin(t *testing.T) {
	// A 45-minute range with 30-minute bins has 2 bins.
	b, err := NewMedianBinner(t0, t0.Add(45*time.Minute), 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if b.Bins() != 2 {
		t.Fatalf("bins = %d", b.Bins())
	}
	b.Add(t0.Add(40*time.Minute), 7)
	s := b.Series(0)
	if s.Values[1] != 7 {
		t.Fatalf("series = %v", s.Values)
	}
}

func TestCountSeries(t *testing.T) {
	b, _ := NewMedianBinner(t0, t0.Add(time.Hour), 30*time.Minute)
	b.AddGroup(t0, []float64{1})
	b.AddGroup(t0, []float64{2})
	cs := b.CountSeries()
	if cs.Values[0] != 2 || cs.Values[1] != 0 {
		t.Fatalf("counts = %v", cs.Values)
	}
}
