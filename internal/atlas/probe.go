// Package atlas simulates the parts of the RIPE Atlas platform the paper
// relies on: a fleet of probes (and anchors) deployed across ASes, the
// built-in traceroute measurements every probe runs continuously, and the
// execution of those traceroutes over the netsim substrate. Results are
// emitted in the traceroute package's model and serialise to genuine
// Atlas JSON, so everything downstream is agnostic to whether data came
// from the simulator or from the Atlas API.
package atlas

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/bgp"
	"github.com/last-mile-congestion/lastmile/internal/netsim"
	"github.com/last-mile-congestion/lastmile/internal/traceroute"
)

// Target is a traceroute destination.
type Target struct {
	// Addr is the destination address.
	Addr netip.Addr
	// PathMs is the base round-trip time from a generic ISP core router
	// to the target (propagation across transit).
	PathMs float64
	// TailHops is the number of routers between the probe's ISP core
	// and the target, inclusive of the target.
	TailHops int
}

// Probe is one Atlas vantage point, fully wired into the simulated
// network: its home LAN, its ISP's edge, and the shared aggregation
// device its access line is terminated on.
type Probe struct {
	// ID is the Atlas probe identifier.
	ID int
	// Version is the hardware version (1–3); v1/v2 probes are noisier,
	// which §2 notes and tolerates.
	Version int
	// IsAnchor marks datacenter-hosted anchors.
	IsAnchor bool
	// ASN is the hosting network.
	ASN bgp.ASN
	// CC and City locate the probe.
	CC, City string
	// PublicAddr is the probe's public address (the Atlas "from" field).
	PublicAddr netip.Addr
	// LANAddr is the probe's own private address.
	LANAddr netip.Addr
	// GatewayAddr is the home gateway, the traceroute's first hop.
	GatewayAddr netip.Addr
	// EdgeAddr is the ISP edge router, the first public hop.
	EdgeAddr netip.Addr
	// CoreAddr is the ISP core router behind the edge.
	CoreAddr netip.Addr
	// Device is the shared aggregation device between the gateway and
	// the ISP edge. May be nil for a perfectly provisioned path.
	Device *netsim.AggregationDevice
	// EdgeBaseMs is the base RTT from the probe to the ISP edge.
	EdgeBaseMs float64
	// ExtraNoiseMs adds home-network noise on top of the hardware
	// baseline: probes behind Wi-Fi or busy home LANs time packets with
	// millisecond-scale variation, which drowns weak diurnal signals
	// and spreads those ASes' prominent frequencies across the spectrum
	// (Fig. 3, top).
	ExtraNoiseMs float64
	// Availability is the per-30-minute-window probability the probe is
	// online (v3 ≈ 0.99, v1/v2 lower).
	Availability float64
}

// noiseMs returns the per-hop reply noise for the probe's hardware
// version plus its home-network contribution: v1/v2 probes time packets
// less precisely.
func (p *Probe) noiseMs() float64 {
	base := 0.12
	switch p.Version {
	case 1, 2:
		base = 0.35
	}
	return base + p.ExtraNoiseMs
}

// RouteTo assembles the simulated route from the probe to the target:
// home gateway (private), ISP edge (public, behind the shared aggregation
// device), ISP core, then the target's transit tail.
func (p *Probe) RouteTo(target Target) *netsim.Route {
	noise := p.noiseMs()
	var sources []netsim.DelaySource
	if p.Device != nil {
		sources = append(sources, p.Device)
	}
	hops := []netsim.Hop{
		{Addr: p.GatewayAddr, BaseMs: 0.35, NoiseMs: noise},
		{Addr: p.EdgeAddr, BaseMs: p.EdgeBaseMs, NoiseMs: noise, Sources: sources},
		{Addr: p.CoreAddr, BaseMs: 0.9, NoiseMs: noise},
	}
	tail := target.TailHops
	if tail < 1 {
		tail = 1
	}
	perHop := target.PathMs / float64(tail)
	for i := 0; i < tail; i++ {
		addr := target.Addr
		if i < tail-1 {
			addr = transitAddr(target.Addr, i)
		}
		hops = append(hops, netsim.Hop{Addr: addr, BaseMs: perHop, NoiseMs: noise})
	}
	return &netsim.Route{Hops: hops}
}

// LastMileRoute returns just the probe's first two hops — home gateway and
// ISP edge with the shared device between them. Large-scale surveys sample
// this truncated route directly instead of materialising full traceroute
// results: the last-mile estimator only ever reads these two hops, so the
// produced RTT samples are statistically identical to Trace + Estimate.
func (p *Probe) LastMileRoute() *netsim.Route {
	noise := p.noiseMs()
	var sources []netsim.DelaySource
	if p.Device != nil {
		sources = append(sources, p.Device)
	}
	return &netsim.Route{Hops: []netsim.Hop{
		{Addr: p.GatewayAddr, BaseMs: 0.35, NoiseMs: noise},
		{Addr: p.EdgeAddr, BaseMs: p.EdgeBaseMs, NoiseMs: noise, Sources: sources},
	}}
}

// transitAddr derives a deterministic transit router address on the path
// toward dst.
func transitAddr(dst netip.Addr, i int) netip.Addr {
	if dst.Is4() {
		b := dst.As4()
		b[3] = byte(200 + i)
		return netip.AddrFrom4(b)
	}
	b := dst.As16()
	b[15] = byte(200 + i)
	return netip.AddrFrom16(b)
}

// OnlineAt reports whether the probe is up during the 30-minute window
// containing t, derived deterministically from probe identity and window
// index so that an offline window drops all its traceroutes — which is
// what the paper's <3-traceroutes sanity filter exists to catch.
func (p *Probe) OnlineAt(t time.Time, seed uint64) bool {
	return p.OnlineAtStream(t, seed, netsim.NewStream())
}

// OnlineAtStream is OnlineAt for hot loops: it draws through the
// caller's reusable Stream instead of allocating a PRNG per window. The
// stream is re-keyed first, so the answer is identical to OnlineAt's.
func (p *Probe) OnlineAtStream(t time.Time, seed uint64, stream *netsim.Stream) bool {
	window := uint64(t.Unix() / 1800)
	stream.Derive(seed, uint64(p.ID), window, 0xA11E)
	return stream.Float64() < p.Availability
}

// Trace executes one traceroute to target at time t and returns the
// result in Atlas form. Three probes are sent per hop. The rng governs
// all stochastic components and should be derived from (seed, probe,
// measurement, time) for reproducibility.
func (p *Probe) Trace(msmID int, target Target, t time.Time, rng *rand.Rand) (*traceroute.Result, error) {
	route := p.RouteTo(target)
	res := &traceroute.Result{
		ProbeID:   p.ID,
		MsmID:     msmID,
		Timestamp: t,
		AF:        4,
		SrcAddr:   p.LANAddr,
		FromAddr:  p.PublicAddr,
		DstAddr:   target.Addr,
		Proto:     "ICMP",
	}
	if target.Addr.Is6() {
		res.AF = 6
	}
	for i := 0; i < route.Len(); i++ {
		hop := traceroute.HopResult{Hop: i + 1}
		for k := 0; k < 3; k++ {
			rtt, ok, err := route.RTT(i, t, rng)
			if err != nil {
				return nil, fmt.Errorf("atlas: probe %d: %w", p.ID, err)
			}
			if !ok {
				hop.Replies = append(hop.Replies, traceroute.Reply{Timeout: true})
				continue
			}
			hop.Replies = append(hop.Replies, traceroute.Reply{
				From: route.Hops[i].Addr,
				RTT:  rtt,
				TTL:  64 - i,
			})
		}
		res.Hops = append(res.Hops, hop)
		// Stop at the destination, like a real traceroute.
		if route.Hops[i].Addr == target.Addr {
			break
		}
	}
	return res, nil
}
