package atlas

import (
	"errors"
	"fmt"
	"net/netip"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/netsim"
	"github.com/last-mile-congestion/lastmile/internal/traceroute"
)

// Measurement is one recurring traceroute measurement a probe executes.
type Measurement struct {
	// MsmID is the measurement identifier (Atlas built-ins use
	// 5001–5016 for roots and 7000-range for controllers; the simulator
	// follows that convention loosely).
	MsmID int
	// Target is the destination. For RandomTarget measurements the
	// engine picks a fresh target per execution instead.
	Target Target
	// Interval is the execution period.
	Interval time.Duration
	// RandomTarget marks the built-ins that probe two randomly selected
	// addresses every 15 minutes.
	RandomTarget bool
}

// BuiltinMeasurements returns the simulator's stand-in for the 22 IPv4
// built-in traceroute measurements (§2): 20 fixed targets — the 13 root
// name servers plus 7 Atlas infrastructure controllers — every 30
// minutes, and 2 random-target measurements every 15 minutes, yielding
// the paper's 24 traceroutes per probe per 30-minute bin.
func BuiltinMeasurements() []Measurement {
	var ms []Measurement
	// 13 root DNS servers. Addresses are synthetic stand-ins in
	// documentation-adjacent space; only path length diversity matters.
	for i := 0; i < 13; i++ {
		ms = append(ms, Measurement{
			MsmID: 5001 + i,
			Target: Target{
				Addr:     netip.AddrFrom4([4]byte{198, 41, byte(i), 4}),
				PathMs:   8 + 10*float64(i%5),
				TailHops: 4 + i%3,
			},
			Interval: 30 * time.Minute,
		})
	}
	// 7 Atlas controllers.
	for i := 0; i < 7; i++ {
		ms = append(ms, Measurement{
			MsmID: 7001 + i,
			Target: Target{
				Addr:     netip.AddrFrom4([4]byte{193, 0, byte(10 + i), 129}),
				PathMs:   15 + 12*float64(i%4),
				TailHops: 5 + i%2,
			},
			Interval: 30 * time.Minute,
		})
	}
	// 2 random-target measurements every 15 minutes.
	for i := 0; i < 2; i++ {
		ms = append(ms, Measurement{
			MsmID:        9001 + i,
			Interval:     15 * time.Minute,
			RandomTarget: true,
		})
	}
	return ms
}

// BuiltinMeasurementsV6 returns the IPv6 counterpart of the built-in
// schedule: the 13 root servers and 7 controllers over IPv6 plus two
// random-target measurements. Atlas runs both families; the paper's
// analysis uses the IPv4 set, and the IPv6 set powers this library's
// IPv6 last-mile extension (the Appendix C observation, measured on the
// delay side).
func BuiltinMeasurementsV6() []Measurement {
	var ms []Measurement
	mkAddr := func(group, host byte) netip.Addr {
		var b [16]byte
		b[0], b[1] = 0x20, 0x01
		b[2], b[3] = 0x05, 0x03
		b[4] = group
		b[15] = host
		return netip.AddrFrom16(b)
	}
	for i := 0; i < 13; i++ {
		ms = append(ms, Measurement{
			MsmID: 6001 + i,
			Target: Target{
				Addr:     mkAddr(byte(i), 0x35),
				PathMs:   8 + 10*float64(i%5),
				TailHops: 4 + i%3,
			},
			Interval: 30 * time.Minute,
		})
	}
	for i := 0; i < 7; i++ {
		ms = append(ms, Measurement{
			MsmID: 8001 + i,
			Target: Target{
				Addr:     mkAddr(byte(0x80 + i), 0x81),
				PathMs:   15 + 12*float64(i%4),
				TailHops: 5 + i%2,
			},
			Interval: 30 * time.Minute,
		})
	}
	for i := 0; i < 2; i++ {
		ms = append(ms, Measurement{
			MsmID:        9101 + i,
			Interval:     15 * time.Minute,
			RandomTarget: true,
		})
	}
	return ms
}

// TraceroutesPerWindow returns how many traceroutes the measurement set
// produces per 30-minute window.
func TraceroutesPerWindow(ms []Measurement) int {
	n := 0
	for _, m := range ms {
		n += int(30 * time.Minute / m.Interval)
	}
	return n
}

// Engine executes a measurement schedule for probes over a time range.
type Engine struct {
	// Seed drives all randomness; equal seeds reproduce byte-identical
	// result streams.
	Seed uint64
	// Measurements is the schedule; nil selects BuiltinMeasurements.
	Measurements []Measurement
}

// NewEngine returns an engine running the built-in schedule.
func NewEngine(seed uint64) *Engine {
	return &Engine{Seed: seed, Measurements: BuiltinMeasurements()}
}

// randomTarget draws the random-measurement target for a probe and slot:
// an address somewhere in unicast space with a plausible path, in the
// probe's address family.
func (e *Engine) randomTarget(p *Probe, msmID int, slot uint64) Target {
	rng := netsim.DerivedRand(e.Seed, uint64(p.ID), uint64(msmID), slot)
	var addr netip.Addr
	if p.PublicAddr.Is6() {
		var b [16]byte
		b[0] = 0x20
		b[1] = byte(1 + rng.Intn(30))
		for i := 2; i < 8; i++ {
			b[i] = byte(rng.Intn(256))
		}
		b[15] = byte(1 + rng.Intn(254))
		addr = netip.AddrFrom16(b)
	} else {
		var b [4]byte
		// First octet in [1, 223] avoiding special-purpose /8s.
		for {
			b[0] = byte(1 + rng.Intn(223))
			if b[0] != 10 && b[0] != 127 && b[0] != 100 && b[0] != 172 && b[0] != 192 && b[0] != 169 {
				break
			}
		}
		b[1] = byte(rng.Intn(256))
		b[2] = byte(rng.Intn(256))
		b[3] = byte(1 + rng.Intn(254))
		addr = netip.AddrFrom4(b)
	}
	return Target{
		Addr:     addr,
		PathMs:   5 + rng.Float64()*180,
		TailHops: 3 + rng.Intn(6),
	}
}

// Run executes the schedule for probe p over [start, end), calling emit
// for every produced result in timestamp order per measurement. Offline
// windows produce no results. Run stops at the first emit error.
func (e *Engine) Run(p *Probe, start, end time.Time, emit func(*traceroute.Result) error) error {
	if p == nil {
		return errors.New("atlas: nil probe")
	}
	if !start.Before(end) {
		return errors.New("atlas: start must precede end")
	}
	ms := e.Measurements
	if ms == nil {
		ms = BuiltinMeasurements()
	}
	for _, m := range ms {
		if m.Interval <= 0 {
			return fmt.Errorf("atlas: measurement %d has no interval", m.MsmID)
		}
		// Per-(probe, measurement) phase spreads executions across the
		// interval, like Atlas spreads its built-ins.
		phase := time.Duration(netsim.MixSeed(e.Seed, uint64(p.ID), uint64(m.MsmID))%uint64(m.Interval/time.Second)) * time.Second
		for t := start.Add(phase); t.Before(end); t = t.Add(m.Interval) {
			if !p.OnlineAt(t, e.Seed) {
				continue
			}
			slot := uint64(t.Unix()) / uint64(m.Interval/time.Second)
			target := m.Target
			if m.RandomTarget {
				target = e.randomTarget(p, m.MsmID, slot)
			}
			rng := netsim.DerivedRand(e.Seed, uint64(p.ID), uint64(m.MsmID), slot, 0x7ace)
			res, err := p.Trace(m.MsmID, target, t, rng)
			if err != nil {
				return err
			}
			if err := emit(res); err != nil {
				return err
			}
		}
	}
	return nil
}
