package atlas

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/last-mile-congestion/lastmile/internal/bgp"
)

// Probe metadata registry. The paper's probe selection runs on Atlas
// probe metadata, not on traceroutes: anchors are excluded (§2), probes
// are grouped by ASN (§3), and the Tokyo study selects by ASN + city
// (§4). ProbeInfo mirrors the fields of the Atlas probe-archive JSON
// (https://atlas.ripe.net/api/v2/probes/) that those selections need, and
// Registry provides the selections.

// ProbeInfo is one probe's metadata record.
type ProbeInfo struct {
	// ID is the Atlas probe identifier.
	ID int `json:"id"`
	// ASNv4 is the IPv4 origin AS (0 when unknown).
	ASNv4 bgp.ASN `json:"asn_v4"`
	// ASNv6 is the IPv6 origin AS (0 when unknown).
	ASNv6 bgp.ASN `json:"asn_v6,omitempty"`
	// CountryCode is the ISO 3166-1 alpha-2 country.
	CountryCode string `json:"country_code"`
	// City is free-form locality metadata (Atlas carries it in tags or
	// user fields; the simulator emits it directly).
	City string `json:"city,omitempty"`
	// IsAnchor marks datacenter anchors.
	IsAnchor bool `json:"is_anchor"`
	// Version is the hardware version (1-5).
	Version int `json:"version,omitempty"`
	// Status is the probe state; "Connected" means live.
	Status string `json:"status,omitempty"`
	// Tags carry Atlas's user/system tags (e.g. "system-v3", "home").
	Tags []string `json:"tags,omitempty"`
}

// Connected reports whether the probe is live (an empty status is
// treated as connected, for minimal records).
func (p *ProbeInfo) Connected() bool {
	return p.Status == "" || strings.EqualFold(p.Status, "connected")
}

// HasTag reports whether the probe carries the tag.
func (p *ProbeInfo) HasTag(tag string) bool {
	for _, t := range p.Tags {
		if strings.EqualFold(t, tag) {
			return true
		}
	}
	return false
}

// Registry indexes probe metadata for the paper's selections.
type Registry struct {
	byID  map[int]*ProbeInfo
	byASN map[bgp.ASN][]*ProbeInfo
}

// NewRegistry indexes the given records. Duplicate IDs are an error.
func NewRegistry(infos []ProbeInfo) (*Registry, error) {
	r := &Registry{
		byID:  make(map[int]*ProbeInfo, len(infos)),
		byASN: make(map[bgp.ASN][]*ProbeInfo),
	}
	for i := range infos {
		info := &infos[i]
		if info.ID == 0 {
			return nil, errors.New("atlas: probe record without id")
		}
		if _, dup := r.byID[info.ID]; dup {
			return nil, fmt.Errorf("atlas: duplicate probe id %d", info.ID)
		}
		r.byID[info.ID] = info
		if info.ASNv4 != 0 {
			r.byASN[info.ASNv4] = append(r.byASN[info.ASNv4], info)
		}
	}
	return r, nil
}

// ParseRegistry reads probe metadata as either a JSON array or
// newline-delimited JSON objects, auto-detected from the first byte.
func ParseRegistry(rd io.Reader) (*Registry, error) {
	br := bufio.NewReader(rd)
	first, err := firstNonSpace(br)
	if err != nil {
		return nil, fmt.Errorf("atlas: probe metadata: %w", err)
	}
	var infos []ProbeInfo
	if first == '[' {
		dec := json.NewDecoder(br)
		if err := dec.Decode(&infos); err != nil {
			return nil, fmt.Errorf("atlas: probe metadata: %w", err)
		}
		return NewRegistry(infos)
	}
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var info ProbeInfo
		if err := json.Unmarshal([]byte(text), &info); err != nil {
			return nil, fmt.Errorf("atlas: probe metadata line %d: %w", line, err)
		}
		infos = append(infos, info)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewRegistry(infos)
}

// firstNonSpace peeks past leading whitespace without consuming data.
func firstNonSpace(br *bufio.Reader) (byte, error) {
	for i := 1; ; i++ {
		buf, err := br.Peek(i)
		if err != nil {
			return 0, err
		}
		c := buf[i-1]
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			return c, nil
		}
	}
}

// WriteRegistry emits records as a JSON array, sorted by ID.
func (r *Registry) WriteRegistry(w io.Writer) error {
	infos := r.All()
	enc := json.NewEncoder(w)
	return enc.Encode(infos)
}

// Len returns the number of records.
func (r *Registry) Len() int { return len(r.byID) }

// ByID returns one probe's metadata.
func (r *Registry) ByID(id int) (*ProbeInfo, bool) {
	p, ok := r.byID[id]
	return p, ok
}

// All returns every record sorted by ID.
func (r *Registry) All() []ProbeInfo {
	out := make([]ProbeInfo, 0, len(r.byID))
	for _, p := range r.byID {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SelectOptions narrows a probe selection the way the paper does.
type SelectOptions struct {
	// ASN restricts to one origin AS (0 = any).
	ASN bgp.ASN
	// CountryCode restricts to one country ("" = any).
	CountryCode string
	// Cities restricts to the given localities (§4's Greater Tokyo
	// Area); empty = any.
	Cities []string
	// ExcludeAnchors drops anchors, as §2 prescribes for last-mile
	// analysis.
	ExcludeAnchors bool
	// MinVersion drops probes older than this hardware version
	// (0 = any; §2 notes v1/v2 are noisier).
	MinVersion int
	// ConnectedOnly drops disconnected probes.
	ConnectedOnly bool
}

// Select returns the IDs of probes matching the options, sorted.
func (r *Registry) Select(opts SelectOptions) []int {
	var out []int
	for id, p := range r.byID {
		if matches(p, opts) {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// ASNsWithAtLeast returns the ASes hosting at least n matching probes —
// the paper's "all ASes hosting at least three Atlas probes" monitoring
// bar (§3). The ASN field of opts is ignored.
func (r *Registry) ASNsWithAtLeast(n int, opts SelectOptions) []bgp.ASN {
	opts.ASN = 0
	counts := make(map[bgp.ASN]int)
	for _, p := range r.byID {
		if p.ASNv4 == 0 || !matches(p, opts) {
			continue
		}
		counts[p.ASNv4]++
	}
	var out []bgp.ASN
	for asn, c := range counts {
		if c >= n {
			out = append(out, asn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// matches applies SelectOptions to a single probe.
func matches(p *ProbeInfo, opts SelectOptions) bool {
	if opts.ASN != 0 && p.ASNv4 != opts.ASN {
		return false
	}
	if opts.CountryCode != "" && !strings.EqualFold(p.CountryCode, opts.CountryCode) {
		return false
	}
	if len(opts.Cities) > 0 {
		found := false
		for _, c := range opts.Cities {
			if strings.EqualFold(c, p.City) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if opts.ExcludeAnchors && p.IsAnchor {
		return false
	}
	if opts.MinVersion > 0 && p.Version < opts.MinVersion {
		return false
	}
	if opts.ConnectedOnly && !p.Connected() {
		return false
	}
	return true
}
