package atlas

import (
	"bytes"
	"strings"
	"testing"
)

func testInfos() []ProbeInfo {
	return []ProbeInfo{
		{ID: 1, ASNv4: 100, CountryCode: "JP", City: "Tokyo", Version: 3, Status: "Connected"},
		{ID: 2, ASNv4: 100, CountryCode: "JP", City: "Yokohama", Version: 2, Status: "Connected"},
		{ID: 3, ASNv4: 100, CountryCode: "JP", City: "Osaka", Version: 3, Status: "Connected"},
		{ID: 4, ASNv4: 100, CountryCode: "JP", City: "Tokyo", Version: 3, IsAnchor: true, Status: "Connected"},
		{ID: 5, ASNv4: 200, CountryCode: "US", Version: 1, Status: "Disconnected"},
		{ID: 6, ASNv4: 200, CountryCode: "US", Version: 3, Status: "Connected", Tags: []string{"home", "system-v3"}},
		{ID: 7, ASNv4: 300, CountryCode: "DE", Version: 3, Status: "Connected"},
	}
}

func mustRegistry(t *testing.T) *Registry {
	t.Helper()
	r, err := NewRegistry(testInfos())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRegistryBasics(t *testing.T) {
	r := mustRegistry(t)
	if r.Len() != 7 {
		t.Fatalf("len = %d", r.Len())
	}
	p, ok := r.ByID(4)
	if !ok || !p.IsAnchor {
		t.Fatalf("ByID(4) = %+v, %v", p, ok)
	}
	if _, ok := r.ByID(99); ok {
		t.Fatal("unknown id should miss")
	}
	all := r.All()
	if len(all) != 7 || all[0].ID != 1 || all[6].ID != 7 {
		t.Fatalf("All() = %v records", len(all))
	}
}

func TestRegistryDuplicates(t *testing.T) {
	if _, err := NewRegistry([]ProbeInfo{{ID: 1}, {ID: 1}}); err == nil {
		t.Fatal("duplicate ids must error")
	}
	if _, err := NewRegistry([]ProbeInfo{{}}); err == nil {
		t.Fatal("zero id must error")
	}
}

func TestSelectByASNExcludingAnchors(t *testing.T) {
	r := mustRegistry(t)
	// The paper's §2 selection: probes (not anchors) of one AS.
	ids := r.Select(SelectOptions{ASN: 100, ExcludeAnchors: true})
	want := []int{1, 2, 3}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}

func TestSelectGreaterTokyo(t *testing.T) {
	r := mustRegistry(t)
	// §4's selection: ASN + Greater Tokyo cities.
	ids := r.Select(SelectOptions{
		ASN:            100,
		Cities:         []string{"Tokyo", "Yokohama", "Chiba", "Saitama"},
		ExcludeAnchors: true,
	})
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("ids = %v (Osaka must be excluded)", ids)
	}
}

func TestSelectVersionAndStatus(t *testing.T) {
	r := mustRegistry(t)
	ids := r.Select(SelectOptions{MinVersion: 3, ConnectedOnly: true})
	// v3+ connected: 1, 3, 4, 6, 7.
	if len(ids) != 5 {
		t.Fatalf("ids = %v", ids)
	}
	ids = r.Select(SelectOptions{CountryCode: "us", ConnectedOnly: true})
	if len(ids) != 1 || ids[0] != 6 {
		t.Fatalf("ids = %v (case-insensitive country, disconnected dropped)", ids)
	}
}

func TestASNsWithAtLeast(t *testing.T) {
	r := mustRegistry(t)
	// §3's monitoring bar: >=3 non-anchor probes.
	asns := r.ASNsWithAtLeast(3, SelectOptions{ExcludeAnchors: true})
	if len(asns) != 1 || asns[0] != 100 {
		t.Fatalf("asns = %v", asns)
	}
	asns = r.ASNsWithAtLeast(1, SelectOptions{})
	if len(asns) != 3 {
		t.Fatalf("asns = %v", asns)
	}
}

func TestHasTagAndConnected(t *testing.T) {
	r := mustRegistry(t)
	p, _ := r.ByID(6)
	if !p.HasTag("HOME") || p.HasTag("anchor") {
		t.Fatal("tag matching broken")
	}
	p5, _ := r.ByID(5)
	if p5.Connected() {
		t.Fatal("disconnected probe reported connected")
	}
	minimal := ProbeInfo{ID: 9}
	if !minimal.Connected() {
		t.Fatal("empty status should count as connected")
	}
}

func TestParseRegistryArray(t *testing.T) {
	raw := `[
	  {"id": 11, "asn_v4": 100, "country_code": "JP", "is_anchor": false, "version": 3, "status": "Connected"},
	  {"id": 12, "asn_v4": 100, "country_code": "JP", "is_anchor": true, "status": "Connected"}
	]`
	r, err := ParseRegistry(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	ids := r.Select(SelectOptions{ASN: 100, ExcludeAnchors: true})
	if len(ids) != 1 || ids[0] != 11 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestParseRegistryJSONL(t *testing.T) {
	raw := `{"id": 21, "asn_v4": 300, "country_code": "DE"}

{"id": 22, "asn_v4": 300, "country_code": "DE"}
`
	r, err := ParseRegistry(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestParseRegistryErrors(t *testing.T) {
	cases := []string{
		"",                 // empty
		"[{bad",            // broken array
		`{"id": "x"}`,      // wrong type
		`[{"id":1},{"id":1}]`, // duplicates
	}
	for _, c := range cases {
		if _, err := ParseRegistry(strings.NewReader(c)); err == nil {
			t.Errorf("input %q: want error", c)
		}
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	r := mustRegistry(t)
	var buf bytes.Buffer
	if err := r.WriteRegistry(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseRegistry(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != r.Len() {
		t.Fatalf("len = %d, want %d", back.Len(), r.Len())
	}
	p, ok := back.ByID(6)
	if !ok || !p.HasTag("home") || p.ASNv4 != 200 {
		t.Fatalf("record 6 = %+v", p)
	}
}
