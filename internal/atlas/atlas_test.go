package atlas

import (
	"net/netip"
	"testing"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/lastmile"
	"github.com/last-mile-congestion/lastmile/internal/netsim"
	"github.com/last-mile-congestion/lastmile/internal/traceroute"
)

func testDevice(peak float64) *netsim.AggregationDevice {
	return &netsim.AggregationDevice{
		ID:              9,
		Profile:         netsim.DefaultProfile(9),
		BaseUtilization: 0.2,
		PeakUtilization: peak,
		Queue:           netsim.QueueModel{ServiceMs: 0.12, BufferMs: 6.5, JitterFrac: 0.3},
		AccessMbps:      50,
	}
}

func testProbe(id int, peak float64) *Probe {
	return &Probe{
		ID:           id,
		Version:      3,
		ASN:          64500,
		CC:           "JP",
		City:         "Tokyo",
		PublicAddr:   netip.MustParseAddr("20.1.0.50"),
		LANAddr:      netip.MustParseAddr("192.168.1.10"),
		GatewayAddr:  netip.MustParseAddr("192.168.1.1"),
		EdgeAddr:     netip.MustParseAddr("20.1.0.1"),
		CoreAddr:     netip.MustParseAddr("20.1.255.1"),
		Device:       testDevice(peak),
		EdgeBaseMs:   1.8,
		Availability: 1.0,
	}
}

var testTarget = Target{
	Addr:     netip.MustParseAddr("198.41.0.4"),
	PathMs:   30,
	TailHops: 4,
}

func TestRouteToShape(t *testing.T) {
	p := testProbe(1, 0.5)
	r := p.RouteTo(testTarget)
	// gateway + edge + core + 4 tail hops.
	if r.Len() != 7 {
		t.Fatalf("route length = %d, want 7", r.Len())
	}
	if r.Hops[0].Addr != p.GatewayAddr {
		t.Fatal("first hop must be the gateway")
	}
	if r.Hops[1].Addr != p.EdgeAddr {
		t.Fatal("second hop must be the ISP edge")
	}
	if len(r.Hops[1].Sources) != 1 {
		t.Fatal("edge hop must carry the aggregation device")
	}
	if r.Hops[r.Len()-1].Addr != testTarget.Addr {
		t.Fatal("last hop must be the target")
	}
}

func TestRouteToNoDevice(t *testing.T) {
	p := testProbe(1, 0.5)
	p.Device = nil
	r := p.RouteTo(testTarget)
	if len(r.Hops[1].Sources) != 0 {
		t.Fatal("nil device should add no delay source")
	}
}

func TestRouteToMinTail(t *testing.T) {
	p := testProbe(1, 0.5)
	r := p.RouteTo(Target{Addr: netip.MustParseAddr("8.8.8.8"), PathMs: 10, TailHops: 0})
	if r.Len() != 4 {
		t.Fatalf("route length = %d, want 4 (tail clamped to 1)", r.Len())
	}
}

func TestTraceProducesValidAtlasResult(t *testing.T) {
	p := testProbe(7, 0.5)
	at := time.Date(2019, 9, 19, 12, 0, 0, 0, time.UTC)
	res, err := p.Trace(5001, testTarget, at, netsim.DerivedRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.ProbeID != 7 || res.MsmID != 5001 || res.AF != 4 {
		t.Fatalf("result header = %+v", res)
	}
	if !res.ReachedDst() {
		t.Fatal("trace should reach its destination")
	}
	for _, h := range res.Hops {
		if len(h.Replies) != 3 {
			t.Fatalf("hop %d has %d replies, want 3", h.Hop, len(h.Replies))
		}
	}
	// Must round-trip through the Atlas JSON codec.
	data, err := traceroute.MarshalAtlas(res)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := traceroute.ParseAtlas(data); err != nil {
		t.Fatal(err)
	}
}

func TestTraceFeedsLastmileEstimator(t *testing.T) {
	p := testProbe(7, 0.5)
	at := time.Date(2019, 9, 19, 19, 0, 0, 0, time.UTC) // off-peak
	res, err := p.Trace(5001, testTarget, at, netsim.DerivedRand(2))
	if err != nil {
		t.Fatal(err)
	}
	samples, seg, ok := lastmile.Estimate(res)
	if !ok {
		t.Fatal("estimator found no last-mile segment")
	}
	if seg.PrivateAddr != p.GatewayAddr || seg.PublicAddr != p.EdgeAddr {
		t.Fatalf("segment = %+v", seg)
	}
	if len(samples) != 9 {
		t.Fatalf("samples = %d, want 9", len(samples))
	}
	// Off-peak: last-mile delta should be near the edge base RTT.
	for _, s := range samples {
		if s < 0.5 || s > 5 {
			t.Fatalf("sample %v ms implausible off-peak", s)
		}
	}
}

func TestTraceCongestionVisibleInSamples(t *testing.T) {
	p := testProbe(7, 1.6) // saturated at peak
	peakT := time.Date(2019, 9, 19, 12, 0, 0, 0, time.UTC) // 21:00 JST
	offT := time.Date(2019, 9, 19, 19, 0, 0, 0, time.UTC)  // 04:00 JST
	avgSample := func(at time.Time, salt uint64) float64 {
		sum, n := 0.0, 0
		for k := uint64(0); k < 50; k++ {
			res, err := p.Trace(5001, testTarget, at, netsim.DerivedRand(salt, k))
			if err != nil {
				t.Fatal(err)
			}
			if samples, _, ok := lastmile.Estimate(res); ok {
				for _, s := range samples {
					sum += s
					n++
				}
			}
		}
		if n == 0 {
			t.Fatal("no samples")
		}
		return sum / float64(n)
	}
	peak := avgSample(peakT, 3)
	off := avgSample(offT, 4)
	if peak-off < 3 {
		t.Fatalf("peak last-mile %v vs off-peak %v: congestion invisible", peak, off)
	}
}

func TestBuiltinMeasurementsShape(t *testing.T) {
	ms := BuiltinMeasurements()
	if len(ms) != 22 {
		t.Fatalf("built-ins = %d, want 22 (§2)", len(ms))
	}
	if got := TraceroutesPerWindow(ms); got != 24 {
		t.Fatalf("traceroutes per 30-min window = %d, want 24 (§2.1)", got)
	}
	random := 0
	for _, m := range ms {
		if m.RandomTarget {
			random++
			if m.Interval != 15*time.Minute {
				t.Fatal("random built-ins run every 15 minutes")
			}
		} else {
			if m.Interval != 30*time.Minute {
				t.Fatal("fixed built-ins run every 30 minutes")
			}
			if !m.Target.Addr.IsValid() {
				t.Fatal("fixed built-in without target")
			}
		}
	}
	if random != 2 {
		t.Fatalf("random built-ins = %d, want 2", random)
	}
}

func TestEngineRunProducesExpectedVolume(t *testing.T) {
	e := NewEngine(11)
	p := testProbe(7, 0.5)
	start := time.Date(2019, 9, 19, 0, 0, 0, 0, time.UTC)
	end := start.Add(2 * time.Hour)
	count := 0
	err := e.Run(p, start, end, func(r *traceroute.Result) error {
		count++
		return r.Validate()
	})
	if err != nil {
		t.Fatal(err)
	}
	// 24 traceroutes per 30 minutes over 2 hours = 96.
	if count != 96 {
		t.Fatalf("results = %d, want 96", count)
	}
}

func TestEngineDeterministic(t *testing.T) {
	start := time.Date(2019, 9, 19, 0, 0, 0, 0, time.UTC)
	end := start.Add(time.Hour)
	collect := func(seed uint64) []string {
		e := NewEngine(seed)
		p := testProbe(7, 1.2)
		var out []string
		e.Run(p, start, end, func(r *traceroute.Result) error {
			data, err := traceroute.MarshalAtlas(r)
			if err != nil {
				return err
			}
			out = append(out, string(data))
			return nil
		})
		return out
	}
	a, b := collect(5), collect(5)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs between identical runs", i)
		}
	}
	c := collect(6)
	diff := false
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds should differ")
	}
}

func TestEngineOfflineWindowsDropResults(t *testing.T) {
	e := NewEngine(11)
	p := testProbe(7, 0.5)
	p.Availability = 0.5
	start := time.Date(2019, 9, 19, 0, 0, 0, 0, time.UTC)
	end := start.Add(24 * time.Hour)
	count := 0
	if err := e.Run(p, start, end, func(*traceroute.Result) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	full := 24 * 48 // 24 per 30-min over 24h
	if count >= full*8/10 || count == 0 {
		t.Fatalf("results = %d with 50%% availability (full = %d)", count, full)
	}
}

func TestEngineErrors(t *testing.T) {
	e := NewEngine(1)
	if err := e.Run(nil, time.Now(), time.Now().Add(time.Hour), nil); err == nil {
		t.Fatal("nil probe must error")
	}
	p := testProbe(1, 0.5)
	now := time.Date(2019, 9, 19, 0, 0, 0, 0, time.UTC)
	if err := e.Run(p, now, now, nil); err == nil {
		t.Fatal("empty range must error")
	}
	e.Measurements = []Measurement{{MsmID: 1, Interval: 0}}
	if err := e.Run(p, now, now.Add(time.Hour), func(*traceroute.Result) error { return nil }); err == nil {
		t.Fatal("zero interval must error")
	}
}

func TestEngineEmitErrorStops(t *testing.T) {
	e := NewEngine(11)
	p := testProbe(7, 0.5)
	start := time.Date(2019, 9, 19, 0, 0, 0, 0, time.UTC)
	calls := 0
	err := e.Run(p, start, start.Add(time.Hour), func(*traceroute.Result) error {
		calls++
		return errSentinel
	})
	if err != errSentinel {
		t.Fatalf("err = %v", err)
	}
	if calls != 1 {
		t.Fatalf("emit called %d times after error", calls)
	}
}

var errSentinel = &sentinelError{}

type sentinelError struct{}

func (*sentinelError) Error() string { return "sentinel" }

func TestV1ProbesAreNoisier(t *testing.T) {
	v3 := testProbe(1, 0.5)
	v1 := testProbe(2, 0.5)
	v1.Version = 1
	if v1.noiseMs() <= v3.noiseMs() {
		t.Fatal("v1 probes should be noisier than v3")
	}
}

func TestOnlineAtDeterministic(t *testing.T) {
	p := testProbe(1, 0.5)
	p.Availability = 0.5
	at := time.Date(2019, 9, 19, 3, 7, 0, 0, time.UTC)
	if p.OnlineAt(at, 9) != p.OnlineAt(at, 9) {
		t.Fatal("OnlineAt not deterministic")
	}
	// Same 30-minute window, same verdict.
	if p.OnlineAt(at, 9) != p.OnlineAt(at.Add(10*time.Minute), 9) {
		t.Fatal("availability must be stable within a window")
	}
}

func BenchmarkEngineProbeDay(b *testing.B) {
	e := NewEngine(11)
	p := testProbe(7, 1.2)
	start := time.Date(2019, 9, 19, 0, 0, 0, 0, time.UTC)
	end := start.Add(24 * time.Hour)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(p, start, end, func(*traceroute.Result) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBuiltinMeasurementsV6(t *testing.T) {
	ms := BuiltinMeasurementsV6()
	if len(ms) != 22 {
		t.Fatalf("v6 built-ins = %d, want 22", len(ms))
	}
	if got := TraceroutesPerWindow(ms); got != 24 {
		t.Fatalf("traceroutes per window = %d, want 24", got)
	}
	ids := map[int]bool{}
	for _, m := range ms {
		if ids[m.MsmID] {
			t.Fatalf("duplicate msm id %d", m.MsmID)
		}
		ids[m.MsmID] = true
		if !m.RandomTarget && !m.Target.Addr.Is6() {
			t.Fatalf("msm %d target %v is not IPv6", m.MsmID, m.Target.Addr)
		}
	}
	// v4 and v6 schedules must not share measurement ids.
	for _, m4 := range BuiltinMeasurements() {
		if ids[m4.MsmID] {
			t.Fatalf("msm id %d shared between families", m4.MsmID)
		}
	}
}

func TestEngineV6Probe(t *testing.T) {
	dev := testDevice(0.5)
	p := &Probe{
		ID: 99, Version: 3, ASN: 64500, CC: "JP",
		PublicAddr:   netip.MustParseAddr("2001:db8:1::50"),
		LANAddr:      netip.MustParseAddr("fd00::10"),
		GatewayAddr:  netip.MustParseAddr("fd00::1"),
		EdgeAddr:     netip.MustParseAddr("2001:db8:1::1"),
		CoreAddr:     netip.MustParseAddr("2001:db8:1::ff"),
		Device:       dev,
		EdgeBaseMs:   1.8,
		Availability: 1,
	}
	e := &Engine{Seed: 3, Measurements: BuiltinMeasurementsV6()}
	start := time.Date(2019, 9, 19, 0, 0, 0, 0, time.UTC)
	count := 0
	err := e.Run(p, start, start.Add(time.Hour), func(r *traceroute.Result) error {
		count++
		if r.AF != 6 {
			t.Fatalf("result AF = %d, want 6", r.AF)
		}
		if !r.DstAddr.Is6() {
			t.Fatalf("v6 probe got v4 target %v", r.DstAddr)
		}
		samples, seg, ok := lastmile.Estimate(r)
		if !ok {
			t.Fatal("v6 last-mile segment not found")
		}
		if !seg.PrivateAddr.Is6() || !seg.PublicAddr.Is6() {
			t.Fatalf("segment families wrong: %+v", seg)
		}
		if len(samples) == 0 {
			t.Fatal("no samples")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 48 {
		t.Fatalf("results = %d, want 48 (24 per 30-min window)", count)
	}
}
