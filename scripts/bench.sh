#!/usr/bin/env bash
# bench.sh — benchmark runner with benchstat-comparable output, plus a
# record mode that snapshots the hot-path numbers into BENCH_engine.json.
#
# Usage:
#
#   scripts/bench.sh                      # every bench, 5 samples each
#   scripts/bench.sh BenchmarkSurveys     # one bench family
#   COUNT=10 scripts/bench.sh BenchmarkFig2 > new.txt
#   scripts/bench.sh record               # rewrite BENCH_engine.json
#
# Each benchmark is sampled COUNT times (default 5) so the output feeds
# straight into benchstat:
#
#   git stash && scripts/bench.sh > old.txt && git stash pop
#   scripts/bench.sh > new.txt
#   benchstat old.txt new.txt
#
# The worker-count sub-benchmarks (BenchmarkSurveys/workers=N,
# BenchmarkTokyo/workers=N) compare the serial baseline against the
# pooled run; on a multi-core machine the pooled rows should scale with
# physical parallelism, while allocs/op stays flat across widths. The
# shard-count sub-benchmarks (BenchmarkMonitorObserve/shards=N) compare
# single-stripe against striped ingestion into the streaming engine —
# the shards=8 row should beat shards=1 under concurrent load while
# allocs/op stays flat.
#
# Record mode re-measures the hot-path benchmarks — engine ingestion
# (BenchmarkMonitorObserve), the Fig-2 DSP pipeline (BenchmarkFig2), and
# the engine state codec (BenchmarkSnapshot/BenchmarkMerge, whose MB/s
# columns are snapshot bytes over serialize/merge wall time) — and
# rewrites BENCH_engine.json at the repo root. The ingest rows run
# long (200000 iterations per shard width) so pool warm-up and map
# growth amortise to their steady state; the checked-in allocs_per_op of
# 0 for the ingest rows is the zero-alloc hot-path contract in data
# form, and check.sh asserts it independently.
#
# Record mode also re-measures the decode path (BenchmarkIngest*: stdlib
# JSON vs the zero-alloc JSON parser vs the binary wire decoder, plus
# the end-to-end archive replays) and rewrites BENCH_ingest.json. Those
# rows carry MB/s so the JSON-vs-binary decode ratio is visible in the
# snapshot; the 0 allocs_per_op on the two Decode rows (JSON and Wire,
# not Stdlib) is the decode hot-path contract check.sh gates.
set -euo pipefail
cd "$(dirname "$0")/.."

# render_json RAW OUT NOTE — turn `go test -bench` result lines like
#   BenchmarkMonitorObserve/shards=1-8  200000  591.0 ns/op  288 B/op  0 allocs/op
# into a JSON array in run order, values floored to integers so the
# checked-in snapshot diffs cleanly. Rows with a MB/s column (benches
# that call b.SetBytes) gain an mb_per_s field.
render_json() {
  awk -v note="$3" '
    /^Benchmark/ && /allocs\/op/ {
      name = $1
      sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
      ns = ""; bytes = ""; allocs = ""; mbs = ""
      for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i-1)
        if ($i == "MB/s")      mbs = $(i-1)
        if ($i == "B/op")      bytes = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
      }
      n++
      line = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %d", name, ns)
      if (mbs != "") line = line sprintf(", \"mb_per_s\": %d", mbs)
      line = line sprintf(", \"bytes_per_op\": %d, \"allocs_per_op\": %d}", bytes, allocs)
      lines[n] = line
    }
    END {
      printf "{\n"
      printf "  \"note\": \"%s\",\n", note
      printf "  \"benchmarks\": [\n"
      for (i = 1; i <= n; i++) printf "%s%s\n", lines[i], (i < n ? "," : "")
      printf "  ]\n}\n"
    }
  ' "$1" > "$2"
  echo "==> wrote $2" >&2
  cat "$2"
}

record() {
  local raw
  raw="$(mktemp)"
  trap 'rm -f "$raw"' RETURN

  echo "==> measuring BenchmarkMonitorObserve (200000 iterations/shard width)" >&2
  go test -run '^$' -bench 'BenchmarkMonitorObserve' -benchmem -benchtime 200000x -count=1 . | tee -a "$raw" >&2
  echo "==> measuring BenchmarkFig2 (500 iterations)" >&2
  go test -run '^$' -bench 'BenchmarkFig2$' -benchmem -benchtime 500x -count=1 . | tee -a "$raw" >&2
  echo "==> measuring BenchmarkSnapshot/BenchmarkMerge (engine state codec)" >&2
  go test -run '^$' -bench 'BenchmarkSnapshot$|BenchmarkMerge$' -benchmem -count=1 ./internal/engine | tee -a "$raw" >&2
  render_json "$raw" BENCH_engine.json \
    "hot-path benchmark snapshot; regenerate with scripts/bench.sh record"

  : > "$raw"
  echo "==> measuring BenchmarkIngest* (decode + replay, 200 iterations)" >&2
  go test -run '^$' -bench 'BenchmarkIngest' -benchmem -benchtime 200x -count=1 . | tee -a "$raw" >&2
  render_json "$raw" BENCH_ingest.json \
    "ingest decode benchmark snapshot (one op = one synthetic campaign day); regenerate with scripts/bench.sh record"
}

if [[ "${1:-}" == "record" ]]; then
  record
  exit 0
fi

pattern="${1:-.}"
count="${COUNT:-5}"

exec go test -run '^$' -bench "$pattern" -benchmem -count "$count" .
