#!/usr/bin/env bash
# bench.sh — benchmark runner with benchstat-comparable output, plus a
# record mode that snapshots the hot-path numbers into BENCH_engine.json.
#
# Usage:
#
#   scripts/bench.sh                      # every bench, 5 samples each
#   scripts/bench.sh BenchmarkSurveys     # one bench family
#   COUNT=10 scripts/bench.sh BenchmarkFig2 > new.txt
#   scripts/bench.sh record               # rewrite BENCH_engine.json
#
# Each benchmark is sampled COUNT times (default 5) so the output feeds
# straight into benchstat:
#
#   git stash && scripts/bench.sh > old.txt && git stash pop
#   scripts/bench.sh > new.txt
#   benchstat old.txt new.txt
#
# The worker-count sub-benchmarks (BenchmarkSurveys/workers=N,
# BenchmarkTokyo/workers=N) compare the serial baseline against the
# pooled run; on a multi-core machine the pooled rows should scale with
# physical parallelism, while allocs/op stays flat across widths. The
# shard-count sub-benchmarks (BenchmarkMonitorObserve/shards=N) compare
# single-stripe against striped ingestion into the streaming engine —
# the shards=8 row should beat shards=1 under concurrent load while
# allocs/op stays flat.
#
# Record mode re-measures the two hot-path benchmarks — engine ingestion
# (BenchmarkMonitorObserve) and the Fig-2 DSP pipeline (BenchmarkFig2) —
# and rewrites BENCH_engine.json at the repo root. The ingest rows run
# long (200000 iterations per shard width) so pool warm-up and map
# growth amortise to their steady state; the checked-in allocs_per_op of
# 0 for the ingest rows is the zero-alloc hot-path contract in data
# form, and check.sh asserts it independently.
set -euo pipefail
cd "$(dirname "$0")/.."

record() {
  local out="BENCH_engine.json"
  local raw
  raw="$(mktemp)"
  trap 'rm -f "$raw"' RETURN

  echo "==> measuring BenchmarkMonitorObserve (200000 iterations/shard width)" >&2
  go test -run '^$' -bench 'BenchmarkMonitorObserve' -benchmem -benchtime 200000x -count=1 . | tee -a "$raw" >&2
  echo "==> measuring BenchmarkFig2 (500 iterations)" >&2
  go test -run '^$' -bench 'BenchmarkFig2$' -benchmem -benchtime 500x -count=1 . | tee -a "$raw" >&2

  # Benchmark result lines look like:
  #   BenchmarkMonitorObserve/shards=1-8  200000  591.0 ns/op  288 B/op  0 allocs/op
  # Render them as a JSON array in run order (fixed by the two go test
  # invocations above), values floored to integers so the checked-in
  # snapshot diffs cleanly.
  awk '
    /^Benchmark/ && /allocs\/op/ {
      name = $1
      sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
      ns = ""; bytes = ""; allocs = ""
      for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i-1)
        if ($i == "B/op")      bytes = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
      }
      n++
      lines[n] = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %d, \"bytes_per_op\": %d, \"allocs_per_op\": %d}", name, ns, bytes, allocs)
    }
    END {
      printf "{\n"
      printf "  \"note\": \"hot-path benchmark snapshot; regenerate with scripts/bench.sh record\",\n"
      printf "  \"benchmarks\": [\n"
      for (i = 1; i <= n; i++) printf "%s%s\n", lines[i], (i < n ? "," : "")
      printf "  ]\n}\n"
    }
  ' "$raw" > "$out"
  echo "==> wrote $out" >&2
  cat "$out"
}

if [[ "${1:-}" == "record" ]]; then
  record
  exit 0
fi

pattern="${1:-.}"
count="${COUNT:-5}"

exec go test -run '^$' -bench "$pattern" -benchmem -count "$count" .
