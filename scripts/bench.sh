#!/usr/bin/env bash
# bench.sh — benchmark runner with benchstat-comparable output.
#
# Usage:
#
#   scripts/bench.sh                      # every bench, 5 samples each
#   scripts/bench.sh BenchmarkSurveys     # one bench family
#   COUNT=10 scripts/bench.sh BenchmarkFig2 > new.txt
#
# Each benchmark is sampled COUNT times (default 5) so the output feeds
# straight into benchstat:
#
#   git stash && scripts/bench.sh > old.txt && git stash pop
#   scripts/bench.sh > new.txt
#   benchstat old.txt new.txt
#
# The worker-count sub-benchmarks (BenchmarkSurveys/workers=N,
# BenchmarkTokyo/workers=N) compare the serial baseline against the
# pooled run; on a multi-core machine the pooled rows should scale with
# physical parallelism, while allocs/op stays flat across widths. The
# shard-count sub-benchmarks (BenchmarkMonitorObserve/shards=N) compare
# single-stripe against striped ingestion into the streaming engine —
# the shards=8 row should beat shards=1 under concurrent load while
# allocs/op stays flat.
set -euo pipefail
cd "$(dirname "$0")/.."

pattern="${1:-.}"
count="${COUNT:-5}"

exec go test -run '^$' -bench "$pattern" -benchmem -count "$count" .
