#!/usr/bin/env bash
# check.sh — the pre-PR gate. Chains the build, go vet, the repo's own
# lmvet static-analysis suite, the full test run under the race
# detector, a focused race-stress pass over the parallel execution
# paths, and a one-iteration benchmark smoke run. Any stage failing
# fails the gate; the failing stage is named on stderr and every stage's
# wall-clock time is reported either way.
set -euo pipefail
cd "$(dirname "$0")/.."

# Stage bookkeeping: stage NAME starts a named stage (closing the
# previous one), the EXIT trap closes the last stage, names the failing
# one on a non-zero exit, and prints the timing table.
STAGE=""
STAGE_START=0
SUMMARY=""

stage_done() {
  if [ -n "${STAGE}" ]; then
    SUMMARY+=$(printf '  %4ds  %s' "$(( SECONDS - STAGE_START ))" "${STAGE}")$'\n'
  fi
}

stage() {
  stage_done
  STAGE="$1"
  STAGE_START=${SECONDS}
  echo "==> ${STAGE}"
}

on_exit() {
  local status=$?
  stage_done
  if [ "${status}" -ne 0 ] && [ -n "${STAGE}" ]; then
    echo "check.sh: FAILED at stage \"${STAGE}\" (exit ${status})" >&2
  fi
  if [ -n "${SUMMARY}" ]; then
    echo "-- stage timings (wall clock) --"
    printf '%s' "${SUMMARY}"
  fi
}
trap on_exit EXIT

stage "go build ./..."
go build ./...

stage "go vet ./..."
go vet ./...

stage "lmvet ./..."
mkdir -p artifacts
go run ./cmd/lmvet -baseline lmvet.baseline -sarif artifacts/lmvet.sarif ./...

stage "go test -race ./..."
go test -race ./...

# The worker pool and the multi-worker survey/Tokyo paths get a second,
# dedicated -race pass with caching disabled: scheduling differs run to
# run, so fresh executions are what surface ordering bugs.
stage "go test -race -count=1 (parallel paths)"
go test -race -count=1 ./internal/parallel/
go test -race -count=1 -run 'TestRunSurveyParallelMatchesSerial' ./internal/scenario/
go test -race -count=1 -run 'WorkerEquivalence' ./internal/experiments/

# The unified engine's determinism contract: batch surveys are a replay
# of the streaming engine, bit for bit, at every shard and worker count,
# and out-of-order ingestion within MaxLateness changes nothing.
stage "go test -race -count=1 (engine equivalence)"
go test -race -count=1 ./internal/engine/
go test -race -count=1 -run 'ReplayEquivalence' ./internal/experiments/
go test -race -count=1 -run 'Equivalence|OutOfOrder' ./internal/core/ ./internal/stream/

# The serializable-state contract: a K-way split-and-merge survey and a
# snapshot/restore/continue monitor both reproduce single-engine
# verdicts bit for bit, under the race detector and uncached so the
# parallel map phase reschedules every run.
stage "go test -race -count=1 (merge equivalence)"
go test -race -count=1 -run 'SplitMerge|SnapshotRestore|ShardedEquivalence' \
  ./internal/core/ ./internal/experiments/
go test -race -count=1 -run 'Checkpoint|RestoreMonitor' ./internal/stream/
go test -race -count=1 -run 'ResumeAfterInterrupt' ./cmd/lmmonitor/

# Telemetry registry: a dedicated uncached -race stress pass — eight
# goroutines hammer one registry while snapshots render concurrently,
# and snapshots must be byte-identical at every worker count.
stage "go test -race -count=1 (telemetry stress)"
go test -race -count=1 ./internal/telemetry/

# Daemon soak: the short-mode deterministic soak drives simulated days
# through the lmserved lifecycle — reloads mid-window, target churn, a
# SIGHUP storm, kill-and-resume — and pins the final verdicts
# bit-identical to a batch replay of the same observations. Uncached and
# under -race: goroutine scheduling is the variable under test. The
# watchdog and API suites ride along for the same reason.
stage "serve-soak (deterministic daemon soak under -race)"
go test -race -count=1 -short -run 'TestServeSoakEquivalence' ./internal/serve/
go test -race -count=1 -run 'TestAPIConcurrentReadsDuringIngest' ./internal/serve/
go test -race -count=1 -run 'TestRunWatchdogForcesFlush|TestRunInterruptFlushesOnce' ./cmd/lmmonitor/

# Fuzz smoke: short coverage-guided runs over the two ingest decoders —
# the Atlas JSON parser (which also differential-tests the zero-alloc
# parser against encoding/json) and the binary wire codec's round-trip
# target. Seeds (testdata/fuzz + f.Add) always run under plain
# `go test`; these stages give the mutator a few seconds to hunt for
# fresh panics.
stage "go test -fuzz (Atlas JSON parser, 5s smoke)"
go test -run '^$' -fuzz 'FuzzParseAtlasJSON' -fuzztime 5s ./internal/traceroute/
stage "go test -fuzz (wire codec, 5s smoke)"
go test -run '^$' -fuzz 'FuzzWireRoundTrip' -fuzztime 5s ./internal/wire/

# Benchmark smoke: every bench must still run one iteration cleanly.
stage "go test -bench (smoke, 1 iteration)"
go test -run '^$' -bench . -benchtime 1x .

# Hot-path gate, static half: the dataflow analyzers alone, promoted to
# error severity, so an allocation or lock-order regression on an
# annotated path fails the gate even if some future default demotes
# either analyzer to warn.
stage "lmvet hot-path gate (allocguard+lockorder at error severity)"
go run ./cmd/lmvet \
  -floatcmp=false -nanguard=false -detguard=false -dettaint=false \
  -locksafe=false -errclose=false -poolsafe=false -metricsafe=false \
  -goleak=false -chanprotocol=false -ctxflow=false \
  -severity allocguard=error,lockorder=error \
  -baseline lmvet.baseline ./...

# Concurrency-lifecycle gate: the goflow analyzers alone, promoted to
# error severity — a goroutine leak, a channel-protocol violation, or an
# unthreaded Context anywhere in the module fails the gate.
stage "lmvet concurrency gate (goleak+chanprotocol+ctxflow at error severity)"
go run ./cmd/lmvet \
  -floatcmp=false -nanguard=false -detguard=false -dettaint=false \
  -locksafe=false -errclose=false -poolsafe=false -metricsafe=false \
  -allocguard=false -lockorder=false \
  -severity goleak=error,chanprotocol=error,ctxflow=error \
  -baseline lmvet.baseline ./...

# Hot-path gate, dynamic half: the ingest benchmark must report exactly
# 0 allocs/op at every shard width. 200000 uncached iterations amortise
# pool warm-up and window-map growth to steady state — the same
# measurement scripts/bench.sh record checks into BENCH_engine.json.
stage "zero-alloc ingest gate (BenchmarkMonitorObserve, 0 allocs/op)"
go test -run '^$' -bench 'BenchmarkMonitorObserve' -benchmem -benchtime 200000x -count=1 . \
  | tee /dev/stderr \
  | awk '
      /^Benchmark/ && /allocs\/op/ {
        rows++
        for (i = 2; i <= NF; i++) if ($i == "allocs/op" && $(i-1) != "0") bad++
      }
      END {
        if (rows == 0) { print "zero-alloc gate: no benchmark rows parsed" > "/dev/stderr"; exit 1 }
        if (bad > 0)   { print "zero-alloc gate: " bad " row(s) allocate on the hot path" > "/dev/stderr"; exit 1 }
      }'

# Decode hot-path gate: the two steady-state decode benches — the
# zero-alloc JSON parser and the binary wire decoder — must each report
# exactly 0 allocs/op. One op decodes a full synthetic campaign day
# (~576 results) into a reused Result, so 200 iterations amortise
# scratch growth to steady state. BenchmarkIngestDecodeJSONStdlib is the
# encoding/json baseline and is deliberately excluded.
stage "zero-alloc decode gate (BenchmarkIngestDecode{JSON,Wire}, 0 allocs/op)"
go test -run '^$' -bench 'BenchmarkIngestDecodeJSON$|BenchmarkIngestDecodeWire$' \
  -benchmem -benchtime 200x -count=1 . \
  | tee /dev/stderr \
  | awk '
      /^Benchmark/ && /allocs\/op/ {
        rows++
        for (i = 2; i <= NF; i++) if ($i == "allocs/op" && $(i-1) != "0") bad++
      }
      END {
        if (rows != 2) { print "decode gate: expected 2 benchmark rows, parsed " rows > "/dev/stderr"; exit 1 }
        if (bad > 0)   { print "decode gate: " bad " row(s) allocate on the decode hot path" > "/dev/stderr"; exit 1 }
      }'

stage_done
STAGE=""
echo "==> all checks passed"
