#!/usr/bin/env bash
# check.sh — the pre-PR gate. Chains the build, go vet, the repo's own
# lmvet static-analysis suite, the full test run under the race
# detector, a focused race-stress pass over the parallel execution
# paths, and a one-iteration benchmark smoke run. Any stage failing
# fails the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> lmvet ./..."
mkdir -p artifacts
go run ./cmd/lmvet -baseline lmvet.baseline -sarif artifacts/lmvet.sarif ./...

echo "==> go test -race ./..."
go test -race ./...

# The worker pool and the multi-worker survey/Tokyo paths get a second,
# dedicated -race pass with caching disabled: scheduling differs run to
# run, so fresh executions are what surface ordering bugs.
echo "==> go test -race -count=1 (parallel paths)"
go test -race -count=1 ./internal/parallel/
go test -race -count=1 -run 'TestRunSurveyParallelMatchesSerial' ./internal/scenario/
go test -race -count=1 -run 'WorkerEquivalence' ./internal/experiments/

# The unified engine's determinism contract: batch surveys are a replay
# of the streaming engine, bit for bit, at every shard and worker count,
# and out-of-order ingestion within MaxLateness changes nothing.
echo "==> go test -race -count=1 (engine equivalence)"
go test -race -count=1 ./internal/engine/
go test -race -count=1 -run 'ReplayEquivalence' ./internal/experiments/
go test -race -count=1 -run 'Equivalence|OutOfOrder' ./internal/core/ ./internal/stream/

# Benchmark smoke: every bench must still run one iteration cleanly.
echo "==> go test -bench (smoke, 1 iteration)"
go test -run '^$' -bench . -benchtime 1x .

echo "==> all checks passed"
