#!/usr/bin/env bash
# check.sh — the pre-PR gate. Chains the build, go vet, the repo's own
# lmvet static-analysis suite, and the full test run under the race
# detector. Any stage failing fails the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> lmvet ./..."
go run ./cmd/lmvet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> all checks passed"
