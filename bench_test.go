// Benchmark harness: one benchmark per paper table and figure, plus the
// ablation benches for the design choices DESIGN.md calls out. Each bench
// regenerates its artefact end to end at a reduced-but-faithful scale (the
// full 646-AS / 340-probe scale is a multi-minute batch job; run it via
// cmd/lmexp). Use:
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig5 -benchtime 3x
package lastmile_test

import (
	"bytes"
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"

	lastmile "github.com/last-mile-congestion/lastmile"
	"github.com/last-mile-congestion/lastmile/internal/experiments"
	"github.com/last-mile-congestion/lastmile/internal/traceroute"
	"github.com/last-mile-congestion/lastmile/internal/wire"
)

// workerCounts are the fan-out widths the parallel benches compare: the
// serial baseline against a modest pool. Output is bit-identical across
// the two, so the delta is pure scheduling.
var workerCounts = []int{1, 4}

// benchOpts is the reduced scale shared by all benches.
func benchOpts() experiments.Options {
	return experiments.Options{
		Seed:              2020,
		WorldASes:         100,
		FleetSize:         48,
		CDNClients:        150,
		TraceroutesPerBin: 4,
	}
}

// BenchmarkFig1 regenerates Figure 1: weekly aggregated queuing delay for
// ISP_DE and ISP_US across the seven measurement periods.
func BenchmarkFig1(b *testing.B) {
	o := benchOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(o)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2 regenerates Figure 2: the Welch periodograms of the
// Figure 1 signals.
func BenchmarkFig2(b *testing.B) {
	o := benchOpts()
	f1, err := experiments.Fig1(o)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2From(f1)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSurveySet runs the seven surveys once for the survey-derived
// benches.
func benchSurveySet(b *testing.B) *experiments.SurveySet {
	b.Helper()
	set, err := experiments.RunSurveys(benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	return set
}

// BenchmarkSurveys measures the end-to-end survey pipeline itself: the
// world's ASes measured and classified for all seven periods, at the
// serial baseline and on a 4-worker pool.
func BenchmarkSurveys(b *testing.B) {
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			o := benchOpts()
			o.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunSurveys(o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3 regenerates Figure 3: the prominent-frequency and
// daily-amplitude distributions across monitored ASes.
func BenchmarkFig3(b *testing.B) {
	set := benchSurveySet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig3From(set).Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4 regenerates Figure 4: the classification breakdown by
// APNIC rank bucket, September 2019 vs April 2020.
func BenchmarkFig4(b *testing.B) {
	set := benchSurveySet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig4From(set).Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeadline regenerates the §3 headline table (reported counts,
// churn, COVID growth, geography).
func BenchmarkHeadline(b *testing.B) {
	set := benchSurveySet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.HeadlineFrom(set).Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTokyoSet runs the Tokyo case study once for the Tokyo-derived
// benches.
func benchTokyoSet(b *testing.B) *experiments.TokyoSet {
	b.Helper()
	ts, err := experiments.RunTokyo(benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	return ts
}

// BenchmarkTokyo measures the end-to-end §4 case study: delays for 21
// probes plus CDN log generation and throughput estimation for six
// service arms, at the serial baseline and on a 4-worker pool.
func BenchmarkTokyo(b *testing.B) {
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			o := benchOpts()
			o.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunTokyo(o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5 regenerates Figure 5: Tokyo aggregated last-mile delays.
func BenchmarkFig5(b *testing.B) {
	ts := benchTokyoSet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig5From(ts).Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 regenerates Figure 6: Tokyo CDN throughput, broadband vs
// mobile.
func BenchmarkFig6(b *testing.B) {
	ts := benchTokyoSet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig6From(ts).Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 regenerates Figure 7: the delay/throughput Spearman
// correlations.
func BenchmarkFig7(b *testing.B) {
	ts := benchTokyoSet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig7From(ts).Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8 regenerates Figure 8 (Appendix B): ISP_D probes vs
// anchor.
func BenchmarkFig8(b *testing.B) {
	o := benchOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(o)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9 regenerates Figure 9 (Appendix C): IPv4 vs IPv6
// throughput.
func BenchmarkFig9(b *testing.B) {
	ts := benchTokyoSet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig9From(ts).Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benches: the design choices DESIGN.md §5 calls out.

func BenchmarkAblationAggregation(b *testing.B) {
	o := benchOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationAggregation(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBinWidth(b *testing.B) {
	o := benchOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationBinWidth(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationWelch(b *testing.B) {
	o := benchOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationWelch(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEstimator(b *testing.B) {
	o := benchOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationEstimator(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDiscard(b *testing.B) {
	o := benchOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationDiscard(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationThresholds(b *testing.B) {
	o := benchOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationThresholds(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonitorObserve measures concurrent ingestion into the
// streaming monitor's sharded engine. Every goroutine feeds its own AS
// with advancing timestamps, so the shards=1 sub-benchmark serialises on
// a single stripe while shards=8 spreads the same load — the delta is
// the striping win. Verdicts are identical at any shard count; only
// throughput changes.
func BenchmarkMonitorObserve(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			m := lastmile.NewStreamMonitor(lastmile.StreamOptions{
				Window:      6 * time.Hour,
				MaxLateness: 24 * time.Hour,
				Shards:      shards,
			})
			var gid atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				g := int(gid.Add(1))
				asn := lastmile.ASN(64500 + g)
				tmpl := buildTrace(g, t0, 2)
				i := 0
				for pb.Next() {
					r := *tmpl
					r.Timestamp = t0.Add(time.Duration(i) * time.Second)
					i++
					if err := m.Observe(asn, &r); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// --- Ingest path (decode + replay) ---

// ingestBenchData builds one day of traceroutes in every shape the
// ingest benches need: individual Atlas JSON lines, the concatenated
// JSONL archive, the binary wire archive, and the raw frame payloads.
func ingestBenchData(b *testing.B) (lines [][]byte, jsonArchive, wireArchive []byte, payloads [][]byte) {
	b.Helper()
	var jsonBuf, wireBuf bytes.Buffer
	jw := lastmile.NewResultWriter(&jsonBuf)
	ww := lastmile.NewBinaryResultWriter(&wireBuf)
	end := t0.Add(24 * time.Hour)
	for ts := t0; ts.Before(end); ts = ts.Add(10 * time.Minute) {
		for probe := 1; probe <= 4; probe++ {
			r := buildTrace(probe, ts, 2.0+float64(probe))
			line, err := lastmile.MarshalAtlasResult(r)
			if err != nil {
				b.Fatal(err)
			}
			lines = append(lines, line)
			payloads = append(payloads, wire.AppendResult(nil, 64500, r))
			if err := jw.Write(r); err != nil {
				b.Fatal(err)
			}
			if err := ww.WriteResult(64500, r); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := jw.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := ww.Flush(); err != nil {
		b.Fatal(err)
	}
	return lines, jsonBuf.Bytes(), wireBuf.Bytes(), payloads
}

func byteTotal(chunks [][]byte) int64 {
	var n int64
	for _, c := range chunks {
		n += int64(len(c))
	}
	return n
}

// BenchmarkIngestDecodeJSONStdlib is the before picture: one op decodes
// the day's results through encoding/json (the pre-rewrite ingest path).
func BenchmarkIngestDecodeJSONStdlib(b *testing.B) {
	lines, _, _, _ := ingestBenchData(b)
	b.SetBytes(byteTotal(lines))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, line := range lines {
			if _, err := lastmile.ParseAtlasResult(line); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkIngestDecodeJSON is the hand-rolled zero-alloc JSON parser
// decoding into one reused Result — 0 allocs/op is gated by check.sh.
func BenchmarkIngestDecodeJSON(b *testing.B) {
	lines, _, _, _ := ingestBenchData(b)
	b.SetBytes(byteTotal(lines))
	b.ReportAllocs()
	var r lastmile.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, line := range lines {
			if err := traceroute.ParseAtlasInto(&r, line); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkIngestDecodeWire is the binary frame decoder on the same
// results — 0 allocs/op is gated by check.sh.
func BenchmarkIngestDecodeWire(b *testing.B) {
	_, _, _, payloads := ingestBenchData(b)
	b.SetBytes(byteTotal(payloads))
	b.ReportAllocs()
	var r lastmile.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range payloads {
			if _, err := wire.DecodeResultInto(&r, p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkIngestReplayJSON replays the whole JSONL archive through the
// auto-detecting public scanner, end to end.
func BenchmarkIngestReplayJSON(b *testing.B) {
	lines, jsonArchive, _, _ := ingestBenchData(b)
	b.SetBytes(int64(len(jsonArchive)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := lastmile.NewResultScanner(bytes.NewReader(jsonArchive))
		n := 0
		for sc.Scan() {
			n++
		}
		if err := sc.Err(); err != nil {
			b.Fatal(err)
		}
		if n != len(lines) {
			b.Fatalf("replayed %d of %d results", n, len(lines))
		}
	}
}

// BenchmarkIngestReplayWire replays the same campaign from the binary
// archive — the MB/s headroom over BenchmarkIngestReplayJSON is what the
// wire format buys (note the archive is also ~5x smaller).
func BenchmarkIngestReplayWire(b *testing.B) {
	lines, _, wireArchive, _ := ingestBenchData(b)
	b.SetBytes(int64(len(wireArchive)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := lastmile.NewResultScanner(bytes.NewReader(wireArchive))
		n := 0
		for sc.Scan() {
			n++
		}
		if err := sc.Err(); err != nil {
			b.Fatal(err)
		}
		if n != len(lines) {
			b.Fatalf("replayed %d of %d results", n, len(lines))
		}
	}
}
