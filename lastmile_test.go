package lastmile_test

import (
	"bytes"
	"math"
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"time"

	lastmile "github.com/last-mile-congestion/lastmile"
)

var t0 = time.Date(2019, 9, 19, 0, 0, 0, 0, time.UTC)

// buildTrace constructs a traceroute with the given last-mile delta.
func buildTrace(probeID int, ts time.Time, deltaMs float64) *lastmile.Result {
	priv := netip.MustParseAddr("192.168.1.1")
	pub := netip.MustParseAddr("203.0.113.1")
	r := &lastmile.Result{
		ProbeID:   probeID,
		MsmID:     5010,
		Timestamp: ts,
		AF:        4,
		SrcAddr:   netip.MustParseAddr("192.168.1.10"),
		FromAddr:  netip.MustParseAddr("203.0.113.99"),
		DstAddr:   netip.MustParseAddr("193.0.14.129"),
		Proto:     "ICMP",
	}
	h1 := lastmile.HopResult{Hop: 1}
	h2 := lastmile.HopResult{Hop: 2}
	for i := 0; i < 3; i++ {
		h1.Replies = append(h1.Replies, lastmile.Reply{From: priv, RTT: 0.5, TTL: 64})
		h2.Replies = append(h2.Replies, lastmile.Reply{From: pub, RTT: 0.5 + deltaMs, TTL: 254})
	}
	r.Hops = []lastmile.HopResult{h1, h2}
	return r
}

// TestEndToEndPipeline exercises the full public API path: JSON in,
// estimation, accumulation, aggregation, classification.
func TestEndToEndPipeline(t *testing.T) {
	// 15 days of synthetic traceroutes for 5 probes with an evening
	// delay bump: write them as Atlas JSONL first to cover the codec.
	var buf bytes.Buffer
	w := lastmile.NewResultWriter(&buf)
	end := t0.AddDate(0, 0, 15)
	rng := rand.New(rand.NewSource(1))
	for probe := 1; probe <= 5; probe++ {
		for ts := t0; ts.Before(end); ts = ts.Add(10 * time.Minute) {
			delta := 2.0 + rng.Float64()*0.1
			// A 6-hour daily bump of 4 ms: the daily fundamental of this
			// square wave has peak-to-peak (8/π)·sin(π/4)·4/2 ≈ 3.6 ms,
			// comfortably Severe.
			if h := ts.Hour(); h >= 10 && h < 16 {
				delta += 4.0
			}
			if err := w.Write(buildTrace(probe, ts, delta)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	// Read back and feed the pipeline.
	accs := map[int]*lastmile.ProbeAccumulator{}
	sc := lastmile.NewResultScanner(&buf)
	for sc.Scan() {
		r := sc.Result()
		acc := accs[r.ProbeID]
		if acc == nil {
			var err error
			acc, err = lastmile.NewProbeAccumulator(r.ProbeID, t0, end, lastmile.DefaultBinWidth)
			if err != nil {
				t.Fatal(err)
			}
			accs[r.ProbeID] = acc
		}
		if err := acc.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	var list []*lastmile.ProbeAccumulator
	for _, acc := range accs {
		list = append(list, acc)
	}
	signal, probes, err := lastmile.PopulationDelay(list, lastmile.DefaultMinTraceroutes)
	if err != nil {
		t.Fatal(err)
	}
	if probes != 5 {
		t.Fatalf("contributing probes = %d", probes)
	}

	cls, err := lastmile.Classify(signal, lastmile.DefaultClassifierOptions())
	if err != nil {
		t.Fatal(err)
	}
	if cls.Class != lastmile.Severe {
		t.Fatalf("class = %v (amp %.2f), want Severe for a 4 ms daily bump", cls.Class, cls.DailyAmplitude)
	}
	if !cls.IsDaily {
		t.Fatal("peak should be daily")
	}
}

func TestEstimateLastMile(t *testing.T) {
	r := buildTrace(1, t0, 2.0)
	samples, seg, ok := lastmile.EstimateLastMile(r)
	if !ok || len(samples) != 9 {
		t.Fatalf("samples = %v ok=%v", samples, ok)
	}
	if seg.PrivateHop != 0 || seg.PublicHop != 1 {
		t.Fatalf("segment = %+v", seg)
	}
	if _, ok := lastmile.FindSegment(r); !ok {
		t.Fatal("FindSegment should succeed")
	}
}

func TestAtlasJSONRoundTripPublicAPI(t *testing.T) {
	r := buildTrace(7, t0, 1.5)
	data, err := lastmile.MarshalAtlasResult(r)
	if err != nil {
		t.Fatal(err)
	}
	back, err := lastmile.ParseAtlasResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.ProbeID != 7 {
		t.Fatalf("probe = %d", back.ProbeID)
	}
}

func TestSeriesHelpers(t *testing.T) {
	s, err := lastmile.NewSeries(t0, 30*time.Minute, 4)
	if err != nil {
		t.Fatal(err)
	}
	copy(s.Values, []float64{3, 1, 2, 5})
	qd, err := lastmile.SubtractMin(s)
	if err != nil {
		t.Fatal(err)
	}
	if qd.Values[1] != 0 {
		t.Fatalf("min bin = %v", qd.Values[1])
	}
	agg, err := lastmile.AggregateMedian([]*lastmile.Series{s, s, s})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Values[0] != 3 {
		t.Fatalf("agg = %v", agg.Values)
	}
}

func TestWelchPublicAPI(t *testing.T) {
	xs := make([]float64, 720)
	for i := range xs {
		hours := float64(i) / 2
		xs[i] = 1 + math.Sin(2*math.Pi*hours/24)
	}
	pg, err := lastmile.Welch(xs, 2.0, lastmile.WelchDefaults())
	if err != nil {
		t.Fatal(err)
	}
	amp, _, ok := pg.AmplitudeAt(lastmile.DailyFreq)
	if !ok || math.Abs(amp-2.0) > 0.1 {
		t.Fatalf("daily amplitude = %v, want ~2.0", amp)
	}
}

func TestThroughputEstimatorPublicAPI(t *testing.T) {
	var mobile lastmile.PrefixSet
	if err := mobile.AddString("203.99.0.0/16"); err != nil {
		t.Fatal(err)
	}
	opts := lastmile.DefaultThroughputOptions()
	opts.ExcludeMobile = &mobile
	est, err := lastmile.NewThroughputEstimator(t0, t0.Add(time.Hour), opts)
	if err != nil {
		t.Fatal(err)
	}
	fixed := lastmile.LogEntry{
		Timestamp: t0.Add(time.Minute), ClientIP: netip.MustParseAddr("203.98.0.1"),
		Bytes: 5_000_000, DurationMs: 1000, Status: 200, Cache: lastmile.CacheHit,
	}
	mob := fixed
	mob.ClientIP = netip.MustParseAddr("203.99.0.1")
	est.Add(&fixed)
	est.Add(&mob)
	if est.Accepted != 1 {
		t.Fatalf("accepted = %d, want mobile filtered", est.Accepted)
	}
	s := est.Series(1)
	if math.Abs(s.Values[0]-40) > 1e-9 {
		t.Fatalf("throughput = %v", s.Values[0])
	}
}

func TestLogCSVRoundTripPublicAPI(t *testing.T) {
	var buf bytes.Buffer
	w := lastmile.NewLogWriter(&buf)
	e := lastmile.LogEntry{
		Timestamp: t0, ClientIP: netip.MustParseAddr("203.98.0.1"),
		Bytes: 100, DurationMs: 10, Status: 200, Cache: lastmile.CacheMiss,
	}
	if err := w.Write(&e); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := lastmile.NewLogScanner(&buf)
	if !sc.Scan() {
		t.Fatalf("scan failed: %v", sc.Err())
	}
	if sc.Entry().Cache != lastmile.CacheMiss {
		t.Fatal("cache status lost")
	}
}

func TestRIBAndRankingParsers(t *testing.T) {
	rib, err := lastmile.ParseRIB(strings.NewReader("203.0.113.0/24 64500\n"))
	if err != nil {
		t.Fatal(err)
	}
	asn, err := rib.OriginOf(netip.MustParseAddr("203.0.113.9"))
	if err != nil || asn != lastmile.ASN(64500) {
		t.Fatalf("origin = %v, %v", asn, err)
	}
	rk, err := lastmile.ParseRanking(strings.NewReader("64500 JP 1000\n64501 US 2000\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rank, _ := rk.Rank(64501); rank != 1 {
		t.Fatalf("rank = %d", rank)
	}
}

func TestAddressClassifiers(t *testing.T) {
	if !lastmile.IsPrivate(netip.MustParseAddr("10.0.0.1")) {
		t.Fatal("10/8 is private")
	}
	if !lastmile.IsPublic(netip.MustParseAddr("8.8.8.8")) {
		t.Fatal("8.8.8.8 is public")
	}
}

func TestSpearmanPublicAPI(t *testing.T) {
	rho, err := lastmile.Spearman([]float64{1, 2, 3}, []float64{30, 20, 10})
	if err != nil || rho != -1 {
		t.Fatalf("rho = %v, %v", rho, err)
	}
}

func TestSurveyPublicAPI(t *testing.T) {
	s := lastmile.NewSurvey("2019-09")
	s.Add(&lastmile.ASResult{ASN: 1, Classification: lastmile.Classification{Class: lastmile.Mild}})
	s.Add(&lastmile.ASResult{ASN: 2, Classification: lastmile.Classification{Class: lastmile.None}})
	if got := s.CountByClass()[lastmile.Mild]; got != 1 {
		t.Fatalf("mild count = %d", got)
	}
	if len(s.ReportedASes()) != 1 {
		t.Fatal("reported should have 1 AS")
	}
}

func TestProbeRegistryPublicAPI(t *testing.T) {
	raw := `[
	  {"id": 1, "asn_v4": 64500, "country_code": "JP", "city": "Tokyo", "version": 3, "status": "Connected"},
	  {"id": 2, "asn_v4": 64500, "country_code": "JP", "is_anchor": true, "status": "Connected"},
	  {"id": 3, "asn_v4": 64501, "country_code": "US", "version": 1, "status": "Connected"}
	]`
	reg, err := lastmile.ParseProbeRegistry(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	ids := reg.Select(lastmile.ProbeSelect{ASN: 64500, ExcludeAnchors: true})
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("ids = %v", ids)
	}
	asns := reg.ASNsWithAtLeast(1, lastmile.ProbeSelect{ExcludeAnchors: true})
	if len(asns) != 2 {
		t.Fatalf("asns = %v", asns)
	}
}

func TestStreamMonitorPublicAPI(t *testing.T) {
	m := lastmile.NewStreamMonitor(lastmile.StreamOptions{Window: 8 * 24 * time.Hour})
	end := t0.AddDate(0, 0, 8)
	for ts := t0; ts.Before(end); ts = ts.Add(10 * time.Minute) {
		delta := 2.0
		if h := ts.Hour(); h >= 10 && h < 16 {
			delta += 4.0
		}
		for p := 1; p <= 3; p++ {
			if err := m.Observe(lastmile.ASN(64500), buildTrace(p, ts, delta)); err != nil {
				t.Fatal(err)
			}
		}
	}
	verdicts, skipped := m.ClassifyAll()
	if len(verdicts) != 1 || len(skipped) != 0 {
		t.Fatalf("verdicts = %d, skipped = %d", len(verdicts), len(skipped))
	}
	if verdicts[0].Class != lastmile.Severe {
		t.Fatalf("class = %v (amp %.2f), want Severe", verdicts[0].Class, verdicts[0].DailyAmplitude)
	}
	var st lastmile.StreamStats = m.Stats()
	if st.Ingested == 0 || st.ASes != 1 || st.Probes != 3 || st.Bins == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRunSurveyPublicAPI(t *testing.T) {
	var results []lastmile.AttributedResult
	end := t0.AddDate(0, 0, 8)
	for ts := t0; ts.Before(end); ts = ts.Add(10 * time.Minute) {
		delta := 2.0
		if h := ts.Hour(); h >= 10 && h < 16 {
			delta += 4.0
		}
		for p := 1; p <= 3; p++ {
			results = append(results, lastmile.AttributedResult{ASN: 64500, Result: buildTrace(p, ts, delta)})
		}
	}
	survey, skipped, err := lastmile.RunSurvey("2019-09", results, lastmile.SurveyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped = %v", skipped)
	}
	res := survey.Results[64500]
	if res == nil || res.Class != lastmile.Severe || res.Probes != 3 {
		t.Fatalf("result = %+v", res)
	}
}

func TestGuardAndBootstrapPublicAPI(t *testing.T) {
	// Build a congested population through the facade only.
	var perProbe []*lastmile.Series
	for p := 0; p < 5; p++ {
		s, err := lastmile.NewSeries(t0, 30*time.Minute, 720)
		if err != nil {
			t.Fatal(err)
		}
		for i := range s.Values {
			hour := (i / 2) % 24
			if hour >= 20 && hour < 23 {
				s.Values[i] = 4
			} else {
				s.Values[i] = 0.05
			}
		}
		perProbe = append(perProbe, s)
	}
	signal, err := lastmile.AggregateMedian(perProbe)
	if err != nil {
		t.Fatal(err)
	}
	cls, err := lastmile.Classify(signal, lastmile.DefaultClassifierOptions())
	if err != nil {
		t.Fatal(err)
	}
	boot, err := lastmile.BootstrapAmplitude(perProbe, lastmile.BootstrapOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if boot.ClassStability < 0.99 {
		t.Fatalf("stability = %v for identical probes", boot.ClassStability)
	}
	mask, err := lastmile.PeakHourMask(signal, cls, lastmile.DefaultGuardOptions())
	if err != nil {
		t.Fatal(err)
	}
	frac := lastmile.MaskedFraction(mask)
	if frac < 0.1 || frac > 0.3 {
		t.Fatalf("masked fraction = %v", frac)
	}
}
