module github.com/last-mile-congestion/lastmile

go 1.22
