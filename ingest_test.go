package lastmile_test

// Equivalence of the two ingest paths: the same measurement campaign
// archived as Atlas JSONL and as the binary wire format must produce
// bit-identical survey and streaming verdicts. This is the acceptance
// property of the binary ingest path — the format changes how fast
// results decode, never what the pipeline concludes.

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"

	lastmile "github.com/last-mile-congestion/lastmile"
)

// campaign holds one synthetic measurement period in both encodings.
type campaign struct {
	jsonArchive []byte
	wireArchive []byte
	probeASN    map[int]lastmile.ASN
	start, end  time.Time
}

// buildCampaign generates 8 days of traceroutes for two ASes — one with
// an evening congestion bump, one flat — interleaved in time order, and
// archives them as JSONL and as a wire stream.
func buildCampaign(t *testing.T) *campaign {
	t.Helper()
	c := &campaign{probeASN: map[int]lastmile.ASN{
		1: 64500, 2: 64500, 3: 64501, 4: 64501,
	}}
	end := t0.AddDate(0, 0, 8)

	var jsonBuf, wireBuf bytes.Buffer
	jw := lastmile.NewResultWriter(&jsonBuf)
	ww := lastmile.NewBinaryResultWriter(&wireBuf)
	rng := rand.New(rand.NewSource(7))
	for ts := t0; ts.Before(end); ts = ts.Add(10 * time.Minute) {
		for probe := 1; probe <= 4; probe++ {
			delta := 2.0 + rng.Float64()*0.1
			if c.probeASN[probe] == 64500 && ts.Hour() >= 18 && ts.Hour() < 23 {
				delta += 5.0 // the congested AS's evening bump
			}
			r := buildTrace(probe, ts, delta)
			if err := jw.Write(r); err != nil {
				t.Fatal(err)
			}
			if err := ww.WriteResult(c.probeASN[probe], r); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := ww.Flush(); err != nil {
		t.Fatal(err)
	}
	c.jsonArchive = jsonBuf.Bytes()
	c.wireArchive = wireBuf.Bytes()
	c.start = t0
	c.end = end
	return c
}

// collect reads an archive back through the auto-detecting scanner,
// attributing JSON results (which carry no in-band AS) from the probe
// map, exactly as cmd/lmsurvey does.
func collect(t *testing.T, c *campaign, archive []byte) []lastmile.AttributedResult {
	t.Helper()
	var out []lastmile.AttributedResult
	sc := lastmile.NewResultScanner(bytes.NewReader(archive))
	for sc.Scan() {
		res := sc.Result()
		asn := sc.ASN()
		if asn == 0 {
			asn = c.probeASN[res.ProbeID]
		}
		out = append(out, lastmile.AttributedResult{ASN: asn, Result: res.Clone()})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// seriesIdentical compares two series bit by bit.
func seriesIdentical(t *testing.T, label string, a, b *lastmile.Series) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: series length %d vs %d", label, a.Len(), b.Len())
	}
	for i := range a.Values {
		if math.Float64bits(a.Values[i]) != math.Float64bits(b.Values[i]) {
			t.Fatalf("%s: bin %d differs: %v vs %v", label, i, a.Values[i], b.Values[i])
		}
	}
}

// TestIngestEquivalenceSurvey: RunSurvey over the JSON archive and the
// wire archive produces bit-identical verdicts.
func TestIngestEquivalenceSurvey(t *testing.T) {
	c := buildCampaign(t)
	opts := lastmile.SurveyOptions{Start: c.start, End: c.end}

	run := func(archive []byte) *lastmile.Survey {
		s, skipped, err := lastmile.RunSurvey("2019-09", collect(t, c, archive), opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(skipped) != 0 {
			t.Fatalf("skipped ASes: %v", skipped)
		}
		return s
	}
	js, ws := run(c.jsonArchive), run(c.wireArchive)

	if js.Len() != ws.Len() || js.Len() != 2 {
		t.Fatalf("AS counts differ: json %d, wire %d", js.Len(), ws.Len())
	}
	for _, asn := range js.ASNs() {
		jr, wr := js.Results[asn], ws.Results[asn]
		if wr == nil {
			t.Fatalf("AS %s missing from the wire survey", asn)
		}
		if jr.Class != wr.Class || jr.Probes != wr.Probes ||
			math.Float64bits(jr.DailyAmplitude) != math.Float64bits(wr.DailyAmplitude) ||
			math.Float64bits(jr.Peak.Freq) != math.Float64bits(wr.Peak.Freq) {
			t.Fatalf("AS %s verdicts differ:\njson: %+v\nwire: %+v", asn, jr, wr)
		}
		seriesIdentical(t, "AS "+asn.String(), jr.Signal, wr.Signal)
	}
	// The campaign must actually discriminate: the congested AS is
	// classified above None, the flat one is not congested.
	if js.Results[64500].Class == lastmile.None {
		t.Fatal("congested AS classified None — the campaign signal is broken")
	}
}

// TestIngestEquivalenceMonitor: the streaming monitor fed from either
// archive reaches bit-identical window verdicts.
func TestIngestEquivalenceMonitor(t *testing.T) {
	c := buildCampaign(t)

	run := func(archive []byte) []*lastmile.StreamVerdict {
		m := lastmile.NewStreamMonitor(lastmile.StreamOptions{Window: 10 * 24 * time.Hour})
		sc := lastmile.NewResultScanner(bytes.NewReader(archive))
		for sc.Scan() {
			res := sc.Result()
			asn := sc.ASN()
			if asn == 0 {
				asn = c.probeASN[res.ProbeID]
			}
			if err := m.Observe(asn, res); err != nil {
				t.Fatal(err)
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		verdicts, skipped := m.ClassifyAll()
		if len(skipped) != 0 {
			t.Fatalf("skipped ASes: %v", skipped)
		}
		return verdicts
	}
	jv, wv := run(c.jsonArchive), run(c.wireArchive)

	if len(jv) != len(wv) || len(jv) != 2 {
		t.Fatalf("verdict counts differ: json %d, wire %d", len(jv), len(wv))
	}
	for i := range jv {
		a, b := jv[i], wv[i]
		if a.ASN != b.ASN || a.Class != b.Class || a.Probes != b.Probes ||
			math.Float64bits(a.DailyAmplitude) != math.Float64bits(b.DailyAmplitude) {
			t.Fatalf("verdict %d differs:\njson: %+v\nwire: %+v", i, a, b)
		}
		seriesIdentical(t, "AS "+a.ASN.String(), a.Signal, b.Signal)
	}
}

// TestBinaryArchiveSmaller pins the size win the format exists for: the
// wire archive of the same campaign is a fraction of the JSONL bytes.
func TestBinaryArchiveSmaller(t *testing.T) {
	c := buildCampaign(t)
	if len(c.wireArchive) >= len(c.jsonArchive)/3 {
		t.Fatalf("wire archive %d bytes vs JSON %d: expected at least a 3x size win",
			len(c.wireArchive), len(c.jsonArchive))
	}
}
